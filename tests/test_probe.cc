/**
 * @file
 * Tests for the waveform probe layer (obs/probe.hh,
 * obs/waveform_io.hh): trigger-window admission and ring eviction,
 * decimation, the SoA-vs-per-phase and probed-vs-unprobed identity
 * contracts, campaign probe binding, and the waveform CSV fixpoint.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "campaign/campaign_engine.hh"
#include "common/logging.hh"
#include "obs/probe.hh"
#include "obs/waveform_io.hh"
#include "pdnspot/platform.hh"
#include "sim/interval_simulator.hh"
#include "workload/trace_generator.hh"
#include "workload/trace_source.hh"

namespace pdnspot
{
namespace
{

ProbeFrame
frame(uint64_t phase, double startS, double durationS,
      double supplyW, double nominalW)
{
    ProbeFrame f;
    f.phase = phase;
    f.start = seconds(startS);
    f.duration = seconds(durationS);
    f.supplyPowerW = supplyW;
    f.nominalPowerW = nominalW;
    return f;
}

/** Feed `n` synthetic 10 ms / 5 W frames starting at `first`. */
void
feedFrames(SignalProbe &probe, uint64_t first, uint64_t n)
{
    for (uint64_t p = first; p < first + n; ++p)
        probe.samplePhase(frame(
            p, 0.01 * static_cast<double>(p), 0.01, 5.0, 4.0));
}

std::vector<uint64_t>
rowPhases(const Waveform &waveform)
{
    std::vector<uint64_t> phases;
    for (const WaveformRow &row : waveform.rows)
        phases.push_back(row.phase);
    return phases;
}

TEST(ProbeSpecTest, MatchesSelectors)
{
    ProbeSpec spec;
    spec.trace = "web";
    spec.pdn = "FlexWatts";
    EXPECT_TRUE(spec.matches("web", "tablet", "FlexWatts", "pmu"));
    EXPECT_TRUE(spec.matches("web", "laptop", "FlexWatts", "static"));
    EXPECT_FALSE(spec.matches("web", "tablet", "IVR", "pmu"));
    EXPECT_FALSE(spec.matches("video", "tablet", "FlexWatts", "pmu"));

    ProbeSpec any;
    EXPECT_TRUE(any.matches("a", "b", "c", "d"));
}

TEST(ProbeSpecTest, SelectedSignalsNormalize)
{
    ProbeSpec spec;
    EXPECT_EQ(spec.selectedSignals().size(), probeSignalCount);

    spec.signals = {ProbeSignal::Mode, ProbeSignal::SupplyPowerW,
                    ProbeSignal::Mode};
    std::vector<ProbeSignal> expected = {ProbeSignal::SupplyPowerW,
                                         ProbeSignal::Mode};
    EXPECT_EQ(spec.selectedSignals(), expected);
}

TEST(ProbeSpecTest, ValidateRejectsNonsense)
{
    ProbeSpec spec;
    spec.decimate = 0;
    EXPECT_THROW(spec.validate(), ConfigError);

    spec = ProbeSpec();
    spec.batteryWh = -1.0;
    EXPECT_THROW(spec.validate(), ConfigError);

    spec = ProbeSpec();
    spec.trigger = ProbeTriggerSpec();
    spec.trigger->window = 0;
    EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(ProbeSignalTest, NamesRoundTrip)
{
    for (ProbeSignal s : allProbeSignals)
        EXPECT_EQ(probeSignalFromString(toString(s)), s);
    EXPECT_THROW(probeSignalFromString("bogus"), ConfigError);
}

TEST(SignalProbeTest, DecimationKeepsEveryNth)
{
    ProbeSpec spec;
    spec.decimate = 3;
    SignalProbe probe(spec, watts(15.0));
    feedFrames(probe, 0, 10);
    EXPECT_EQ(rowPhases(probe.take()),
              (std::vector<uint64_t>{0, 3, 6, 9}));
}

TEST(SignalProbeTest, TriggerAdmitsWindowAroundModeSwitch)
{
    ProbeSpec spec;
    spec.trigger = ProbeTriggerSpec{ProbeTriggerSpec::On::ModeSwitch,
                                    2};
    SignalProbe probe(spec, watts(15.0));
    feedFrames(probe, 0, 5);
    probe.modeSwitch(5, seconds(0.05), HybridMode::LdoMode);
    feedFrames(probe, 5, 5);

    Waveform w = probe.take();
    // Lookback 2 from the ring, the trigger phase, lookahead 2; the
    // rows parked in the ring when no later trigger fired are gone.
    EXPECT_EQ(rowPhases(w), (std::vector<uint64_t>{3, 4, 5, 6, 7}));
    ASSERT_EQ(w.events.size(), 1u);
    EXPECT_EQ(w.events[0].kind, "mode_switch");
    EXPECT_EQ(w.events[0].phase, 5u);
    EXPECT_EQ(w.events[0].detail, toString(HybridMode::LdoMode));
}

TEST(SignalProbeTest, TriggerCauseFilters)
{
    // A budget_clip-only trigger never arms on mode switches, but
    // the switch event itself is still recorded (events are sparse).
    ProbeSpec spec;
    spec.trigger = ProbeTriggerSpec{ProbeTriggerSpec::On::BudgetClip,
                                    2};
    SignalProbe probe(spec, watts(15.0));
    feedFrames(probe, 0, 5);
    probe.modeSwitch(5, seconds(0.05), HybridMode::IvrMode);
    feedFrames(probe, 5, 5);

    Waveform w = probe.take();
    EXPECT_TRUE(w.rows.empty());
    ASSERT_EQ(w.events.size(), 1u);
    EXPECT_EQ(w.events[0].kind, "mode_switch");
}

TEST(SignalProbeTest, RingEvictsBeyondLookback)
{
    // Only the lookback window survives a late trigger: phases far
    // behind it were evicted from the ring as newer rows arrived.
    ProbeSpec spec;
    spec.trigger = ProbeTriggerSpec{ProbeTriggerSpec::On::ModeSwitch,
                                    2};
    SignalProbe probe(spec, watts(15.0));
    feedFrames(probe, 0, 50);
    probe.modeSwitch(50, seconds(0.5), HybridMode::LdoMode);
    feedFrames(probe, 50, 1);

    EXPECT_EQ(rowPhases(probe.take()),
              (std::vector<uint64_t>{48, 49, 50}));
}

TEST(SignalProbeTest, BudgetClipEventFires)
{
    // Sustained supply power far over the shadow governor's budget
    // drives its multiplier into the clamp; the transition must
    // surface as a budget_clip event.
    ProbeSpec probeSpec;
    SignalProbe probe(probeSpec, watts(5.0));
    for (uint64_t p = 0; p < 40; ++p)
        probe.samplePhase(frame(
            p, 0.01 * static_cast<double>(p), 0.01, 40.0, 30.0));

    Waveform w = probe.take();
    bool sawClip = false;
    for (const WaveformEvent &e : w.events)
        sawClip = sawClip || e.kind == "budget_clip";
    EXPECT_TRUE(sawClip);
}

TEST(SignalProbeTest, BatterySocDecreasesMonotonically)
{
    ProbeSpec spec;
    spec.signals = {ProbeSignal::BatterySoc};
    SignalProbe probe(spec, watts(15.0));
    feedFrames(probe, 0, 10);
    Waveform w = probe.take();
    ASSERT_EQ(w.rows.size(), 10u);
    for (size_t i = 1; i < w.rows.size(); ++i)
        EXPECT_LT(w.rows[i].values[0], w.rows[i - 1].values[0]);
    EXPECT_GT(w.rows.back().values[0], 0.0);
}

class ProbeSimTest : public ::testing::Test
{
  protected:
    Platform platform;
};

TEST_F(ProbeSimTest, StaticSoaFramesMatchPerPhase)
{
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    TraceGenerator gen(7);
    PhaseTrace trace = gen.randomMix(30, milliseconds(5.0));

    ProbeSpec spec;
    SignalProbe perPhase(spec, watts(15.0));
    SignalProbe batched(spec, watts(15.0));
    SimResult a = sim.run(trace, platform.pdn(PdnKind::IVR), nullptr,
                          &perPhase);
    SimResult b = sim.run(PhaseSoA(trace),
                          platform.pdn(PdnKind::IVR), nullptr,
                          &batched);
    EXPECT_EQ(a, b);
    EXPECT_EQ(perPhase.take(), batched.take());
}

TEST_F(ProbeSimTest, OracleSoaFramesMatchPerPhase)
{
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    TraceGenerator gen(11);
    PhaseTrace trace = gen.burstyCompute(8, milliseconds(20.0),
                                         milliseconds(40.0));

    ProbeSpec spec;
    SignalProbe perPhase(spec, watts(15.0));
    SignalProbe batched(spec, watts(15.0));
    SimResult a = sim.runOracle(trace, platform.flexWatts(), nullptr,
                                &perPhase);
    SimResult b = sim.runOracle(PhaseSoA(trace),
                                platform.flexWatts(), nullptr,
                                &batched);
    EXPECT_EQ(a, b);
    EXPECT_EQ(perPhase.take(), batched.take());
}

TEST_F(ProbeSimTest, ProbeNeverPerturbsResults)
{
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    TraceGenerator gen(17);
    PhaseTrace trace = gen.burstyCompute(6, milliseconds(60.0),
                                         milliseconds(80.0));

    ProbeSpec spec;
    SignalProbe staticProbe(spec, watts(15.0));
    EXPECT_EQ(sim.run(trace, platform.pdn(PdnKind::MBVR)),
              sim.run(trace, platform.pdn(PdnKind::MBVR), nullptr,
                      &staticProbe));

    PmuConfig cfg;
    cfg.tdp = watts(15.0);
    Pmu bare(cfg, platform.predictor());
    SimResult unprobed = sim.run(trace, platform.flexWatts(), bare);

    Pmu observed(cfg, platform.predictor());
    SignalProbe pmuProbe(spec, watts(15.0));
    SimResult probed = sim.run(trace, platform.flexWatts(), observed,
                               nullptr, &pmuProbe);
    EXPECT_EQ(unprobed, probed);
}

TEST_F(ProbeSimTest, PmuRunRecordsEveryModeSwitch)
{
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    TraceGenerator gen(17);
    PhaseTrace trace = gen.burstyCompute(6, milliseconds(60.0),
                                         milliseconds(80.0));

    PmuConfig cfg;
    cfg.tdp = watts(15.0);
    Pmu pmu(cfg, platform.predictor());
    ProbeSpec spec;
    SignalProbe probe(spec, watts(15.0));
    SimResult r = sim.run(trace, platform.flexWatts(), pmu, nullptr,
                          &probe);

    Waveform w = probe.take();
    uint64_t switches = 0;
    for (const WaveformEvent &e : w.events)
        if (e.kind == "mode_switch")
            ++switches;
    EXPECT_GT(switches, 0u);
    EXPECT_EQ(switches, r.modeSwitches);
    ASSERT_EQ(w.rows.size(), trace.phases().size());
    // Frame powers are phase-energy averages; their weighted sum
    // must reproduce the run's total supply energy.
    double joulesSum = 0.0;
    for (const WaveformRow &row : w.rows)
        joulesSum += row.values[0] * inSeconds(row.duration);
    EXPECT_NEAR(joulesSum, inJoules(r.supplyEnergy), 1e-6);
}

TEST(WaveformIoTest, CsvWriteReadFixpoint)
{
    Platform platform;
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    TraceGenerator gen(5);
    PhaseTrace trace = gen.burstyCompute(5, milliseconds(40.0),
                                         milliseconds(60.0));
    PmuConfig cfg;
    cfg.tdp = watts(15.0);
    Pmu pmu(cfg, platform.predictor());
    ProbeSpec spec;
    SignalProbe probe(spec, watts(15.0));
    sim.run(trace, platform.flexWatts(), pmu, nullptr, &probe);

    Waveform w = probe.take();
    std::string first = writeWaveformCsv(w);
    std::istringstream in(first);
    Waveform back = readWaveformCsv(in, "fixpoint");
    EXPECT_EQ(back.signals, w.signals);
    EXPECT_EQ(back.rows, w.rows);
    EXPECT_EQ(back.events, w.events);
    EXPECT_EQ(writeWaveformCsv(back), first);
}

TEST(WaveformIoTest, ReaderRejectsMalformedInput)
{
    {
        std::istringstream in("nope\n");
        EXPECT_THROW(readWaveformCsv(in, "bad"), ConfigError);
    }
    {
        std::istringstream in(
            "record,phase,t_s,duration_s,etee,detail\n"
            "sample,0,0,0.01\n");
        EXPECT_THROW(readWaveformCsv(in, "bad"), ConfigError);
    }
    {
        std::istringstream in(
            "record,phase,t_s,duration_s,bogus_signal,detail\n");
        EXPECT_THROW(readWaveformCsv(in, "bad"), ConfigError);
    }
}

TEST(WaveformIoTest, CellNameSanitizesSpecials)
{
    Waveform w;
    w.trace = "day in the life";
    w.platform = "tablet";
    w.pdn = "I+MBVR";
    w.mode = "pmu";
    EXPECT_EQ(w.cellName(),
              "day_in_the_life__tablet__I_MBVR__pmu");
}

TEST(WaveformIoTest, CounterEventsCarryCellPid)
{
    Waveform w;
    w.trace = "t";
    w.platform = "p";
    w.pdn = "FlexWatts";
    w.mode = "pmu";
    w.cellIndex = 7;
    w.signals = {ProbeSignal::Etee};
    WaveformRow row;
    row.phase = 0;
    row.start = seconds(0.25);
    row.duration = seconds(0.01);
    row.values = {0.5};
    w.rows.push_back(row);

    std::vector<JsonValue> events = waveformCounterEvents(w);
    ASSERT_EQ(events.size(), 2u); // process_name metadata + 1 sample
    const JsonValue *pid = events[0].find("pid");
    ASSERT_NE(pid, nullptr);
    EXPECT_EQ(pid->asNumber(),
              static_cast<double>(probeCounterPidBase + 7));
    const JsonValue *ts = events[1].find("ts");
    ASSERT_NE(ts, nullptr);
    EXPECT_EQ(ts->asNumber(), 250000.0); // simulated us, not wall
}

TEST(CampaignProbeTest, FirstMatchingProbeBindsAndStampsIdentity)
{
    CampaignSpec spec;
    spec.traces.push_back(TraceSpec::library("bursty-compute", 42));
    spec.traces.push_back(
        TraceSpec::library("web-browsing-trace", 42));
    spec.platforms = {ultraportablePreset()};
    spec.pdns = {PdnKind::IVR, PdnKind::FlexWatts};
    spec.mode = SimMode::Pmu;

    ProbeSpec narrow;
    narrow.trace = "web-browsing-trace";
    narrow.pdn = "FlexWatts";
    narrow.signals = {ProbeSignal::SupplyPowerW, ProbeSignal::Mode};
    ProbeSpec catchAll;
    catchAll.pdn = "FlexWatts";
    spec.probes = {narrow, catchAll};

    ParallelRunner serial(1);
    CampaignResult probed = CampaignEngine(serial).run(spec);

    CampaignSpec bare = spec;
    bare.probes.clear();
    CampaignResult unprobed = CampaignEngine(serial).run(bare);

    // The campaign CSV never sees the probes.
    std::ostringstream a, b;
    probed.writeCsv(a);
    unprobed.writeCsv(b);
    EXPECT_EQ(a.str(), b.str());

    for (size_t i = 0; i < probed.cells.size(); ++i) {
        const CampaignCellResult &cell = probed.cells[i];
        if (cell.pdn != PdnKind::FlexWatts) {
            EXPECT_EQ(cell.waveform, nullptr);
            continue;
        }
        ASSERT_NE(cell.waveform, nullptr);
        EXPECT_EQ(cell.waveform->trace, cell.trace);
        EXPECT_EQ(cell.waveform->platform, cell.platform);
        EXPECT_EQ(cell.waveform->pdn, "FlexWatts");
        EXPECT_EQ(cell.waveform->mode, "pmu");
        EXPECT_EQ(cell.waveform->cellIndex, i);
        // First matching probe wins: the narrow signal subset on the
        // web-browsing cell, everything elsewhere.
        size_t expectSignals = cell.trace == "web-browsing-trace"
                                   ? 2
                                   : probeSignalCount;
        EXPECT_EQ(cell.waveform->signals.size(), expectSignals);
        EXPECT_FALSE(cell.waveform->rows.empty());
    }
}

TEST(CampaignProbeTest, WaveformsDeterministicAcrossThreadCounts)
{
    CampaignSpec spec;
    spec.traces.push_back(TraceSpec::library("bursty-compute", 42));
    spec.traces.push_back(
        TraceSpec::library("web-browsing-trace", 42));
    spec.platforms = {ultraportablePreset(), fanlessTabletPreset()};
    spec.pdns = {PdnKind::IVR, PdnKind::FlexWatts};
    spec.mode = SimMode::Pmu;
    ProbeSpec all;
    spec.probes = {all};

    ParallelRunner serial(1);
    CampaignResult one = CampaignEngine(serial).run(spec);
    ParallelRunner pool(4);
    CampaignResult four = CampaignEngine(pool).run(spec);

    ASSERT_EQ(one.cells.size(), four.cells.size());
    for (size_t i = 0; i < one.cells.size(); ++i) {
        ASSERT_NE(one.cells[i].waveform, nullptr);
        ASSERT_NE(four.cells[i].waveform, nullptr);
        EXPECT_EQ(*one.cells[i].waveform, *four.cells[i].waveform);
        EXPECT_EQ(
            writeWaveformCsv(*one.cells[i].waveform),
            writeWaveformCsv(*four.cells[i].waveform));
    }
}

TEST(PowerBudgetTest, ClampedTracksThrottleFloor)
{
    PowerBudgetManager budget(watts(10.0));
    EXPECT_FALSE(budget.clamped());
    // Far-over-budget load drives the multiplier to its floor.
    for (int i = 0; i < 100; ++i)
        budget.observe(watts(80.0), milliseconds(10.0));
    EXPECT_TRUE(budget.clamped());
    EXPECT_DOUBLE_EQ(budget.recommendedMultiplier(),
                     PowerBudgetManager::minMultiplier);

    // Sitting at the Turbo ceiling is headroom, not a clip.
    PowerBudgetManager idle(watts(10.0));
    for (int i = 0; i < 100; ++i)
        idle.observe(watts(0.5), milliseconds(10.0));
    EXPECT_FALSE(idle.clamped());
    EXPECT_DOUBLE_EQ(idle.recommendedMultiplier(),
                     idle.maxMultiplier());
}

} // namespace
} // namespace pdnspot
