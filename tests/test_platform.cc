/**
 * @file
 * Unit tests for the Platform facade and experiment helpers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "pdnspot/experiments.hh"
#include "pdnspot/platform.hh"
#include "workload/spec_cpu2006.hh"

namespace pdnspot
{
namespace
{

class PlatformTest : public ::testing::Test
{
  protected:
    PlatformTest() : platform() {}

    Platform platform;
};

TEST_F(PlatformTest, ExposesAllPdnKinds)
{
    for (PdnKind kind : allPdnKinds) {
        const PdnModel &pdn = platform.pdn(kind);
        EXPECT_EQ(pdn.kind(), kind);
    }
    EXPECT_EQ(platform.flexWatts().kind(), PdnKind::FlexWatts);
    // flexWatts() aliases the pdn(FlexWatts) instance.
    EXPECT_EQ(&platform.flexWatts(),
              &platform.pdn(PdnKind::FlexWatts));
}

TEST_F(PlatformTest, PredictorUsesConfiguredHysteresis)
{
    EXPECT_DOUBLE_EQ(platform.predictor().hysteresis(),
                     platform.config().predictorHysteresis);

    PlatformConfig cfg;
    cfg.predictorHysteresis = 0.02;
    Platform custom(cfg);
    EXPECT_DOUBLE_EQ(custom.predictor().hysteresis(), 0.02);
}

TEST_F(PlatformTest, ConsistentPlatformParamsAcrossPdns)
{
    for (PdnKind kind : allPdnKinds) {
        const PdnPlatformParams &p = platform.pdn(kind).platform();
        EXPECT_DOUBLE_EQ(inVolts(p.supplyVoltage), 7.2);
        EXPECT_DOUBLE_EQ(inVolts(p.ivrInputVoltage), 1.8);
    }
}

TEST_F(PlatformTest, CustomSupplyVoltagePropagates)
{
    PlatformConfig cfg;
    cfg.pdnParams.supplyVoltage = volts(12.0);
    Platform custom(cfg);
    for (PdnKind kind : allPdnKinds) {
        EXPECT_DOUBLE_EQ(
            inVolts(custom.pdn(kind).platform().supplyVoltage), 12.0);
    }
    // Higher input voltage costs switching loss in the board VRs.
    OperatingPointModel::Query q;
    q.tdp = watts(18.0);
    PlatformState s = custom.operatingPoints().build(q);
    PlatformState s_def = platform.operatingPoints().build(q);
    EXPECT_LT(custom.pdn(PdnKind::MBVR).evaluate(s).etee(),
              platform.pdn(PdnKind::MBVR).evaluate(s_def).etee());
}

TEST_F(PlatformTest, SuiteHelpersConsistent)
{
    auto rel = suiteRelativePerf(platform, PdnKind::LDO, watts(8.0),
                                 specCpu2006());
    ASSERT_EQ(rel.size(), specCpu2006().size());
    double mean = 0.0;
    for (double r : rel)
        mean += r;
    mean /= static_cast<double>(rel.size());
    EXPECT_NEAR(mean,
                suiteMeanRelativePerf(platform, PdnKind::LDO,
                                      watts(8.0), specCpu2006()),
                1e-12);
}

TEST_F(PlatformTest, NormalizedHelpersSelfBaseline)
{
    for (double tdp : {4.0, 25.0}) {
        EXPECT_NEAR(normalizedBom(platform, PdnKind::IVR, watts(tdp)),
                    1.0, 1e-12);
        EXPECT_NEAR(normalizedArea(platform, PdnKind::IVR, watts(tdp)),
                    1.0, 1e-12);
    }
}

TEST_F(PlatformTest, BatteryHelperRejectsBadProfiles)
{
    BatteryProfile bad;
    bad.name = "bad";
    bad.residencies = {{PackageCState::C0Min, 0.5}};
    EXPECT_THROW(batteryAveragePower(platform, PdnKind::IVR, bad),
                 ConfigError);
}

TEST_F(PlatformTest, EteeTableBakedIntoPlatformMatchesFreshTable)
{
    EteeTable fresh(platform.flexWatts(), platform.operatingPoints());
    for (double tdp : {4.0, 50.0}) {
        for (HybridMode m : allHybridModes) {
            EXPECT_NEAR(platform.eteeTable().lookupActive(
                            m, WorkloadType::MultiThread, watts(tdp),
                            0.56),
                        fresh.lookupActive(m, WorkloadType::MultiThread,
                                           watts(tdp), 0.56),
                        1e-12);
        }
    }
}

} // anonymous namespace
} // namespace pdnspot
