/**
 * @file
 * Golden-file regression net over the repo's byte-stable text
 * surfaces: campaign CSV export, trace CSV write, the run report,
 * the per-PDN summary table, and the probe waveform CSV + Perfetto
 * counter-track documents. Each test renders a deterministic fixture and
 * compares it byte for byte against a checked-in file under
 * tests/golden/ — any formatting or numeric drift in the promised
 * surfaces fails loudly instead of silently changing downstream
 * tooling's inputs.
 *
 * Running with PDNSPOT_REGEN_GOLDEN=1 in the environment rewrites
 * the golden files from the current output instead of comparing
 * (scripts/regen_golden.sh drives that); review the diff before
 * committing a regeneration.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "campaign/campaign_engine.hh"
#include "common/table.hh"
#include "obs/metrics.hh"
#include "obs/run_report.hh"
#include "obs/waveform_io.hh"
#include "pdnspot/platform.hh"
#include "workload/trace_io.hh"
#include "workload/trace_source.hh"
#include "workload/trace_transform.hh"

namespace pdnspot
{
namespace
{

/**
 * Compare `actual` against the checked-in golden file, or rewrite
 * the file when regenerating.
 */
void
checkGolden(const std::string &fileName, const std::string &actual)
{
    std::string path =
        std::string(PDNSPOT_GOLDEN_DIR) + "/" + fileName;

    if (std::getenv("PDNSPOT_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        out.close();
        ASSERT_TRUE(out.good()) << "error writing " << path;
        return;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " — run scripts/regen_golden.sh";
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(actual, expected.str())
        << "output drifted from " << path
        << "; if the change is intentional, run "
        << "scripts/regen_golden.sh and review the diff";
}

/**
 * The golden campaign: heterogeneous but small (2 traces x 1
 * platform x 2 PDNs, PMU mode), with one transformed trace so the
 * derivation pipeline sits inside the regression net too.
 */
CampaignSpec
goldenSpec()
{
    TraceGeneratorSpec mix;
    mix.kind = "random-mix";
    mix.seed = 31;
    mix.phases = 10;
    mix.meanPhaseLen = milliseconds(6.0);

    CampaignSpec spec;
    spec.traces.push_back(TraceSpec::generator(mix));
    spec.traces.push_back(
        TraceSpec::library("bursty-compute", 42)
            .rename("bursty-jittered")
            .transform(TraceTransform::arPerturb(0.05, 9))
            .transform(TraceTransform::repeat(2)));
    spec.platforms = {ultraportablePreset()};
    spec.pdns = {PdnKind::IVR, PdnKind::FlexWatts};
    spec.mode = SimMode::Pmu;
    return spec;
}

CampaignResult
goldenResult()
{
    ParallelRunner serial(1);
    return CampaignEngine(serial).run(goldenSpec());
}

TEST(GoldenFileTest, CampaignCsvExport)
{
    std::ostringstream csv;
    goldenResult().writeCsv(csv);
    checkGolden("campaign_export.csv", csv.str());
}

TEST(GoldenFileTest, TraceCsvWrite)
{
    PhaseTrace trace =
        TraceSpec::library("day-in-the-life", 42)
            .transform(TraceTransform::timeScale(1.25))
            .transform(TraceTransform::truncate(seconds(30.0)))
            .resolve();
    std::ostringstream csv;
    writeTraceCsv(csv, trace);
    checkGolden("trace_write.csv", csv.str());
}

TEST(GoldenFileTest, RunReport)
{
    // The full pdnspot-report-1 surface over the golden campaign,
    // serial so metric counts are deterministic, canonicalized so
    // the volatile members (host, durations, build stamp) cannot
    // churn the file.
    MetricsRegistry registry;
    CampaignResult result = [&] {
        MetricsInstallation install(registry);
        return goldenResult();
    }();

    CampaignSpec spec = goldenSpec();
    RunReportInputs in;
    in.specPath = "golden.json";
    in.specText = "golden";
    in.specEcho = JsonValue::makeNull();
    in.spec = &spec;
    in.threads = 1;
    in.endCell = result.cells.size();
    in.rows = result.cells.size();
    in.wallSeconds = 0.25;
    in.batteryWh = 50.0;
    in.summaries = result.summarizeByPdn(BatteryModel(wattHours(50.0)));
    in.metrics = &registry;

    checkGolden("run_report.json",
                writeJson(canonicalizeRunReport(buildRunReport(in))));
}

/**
 * The paper campaign's smallest cell (video-playback-trace on the
 * fanless tablet, FlexWatts under PMU control), probed with every
 * signal at full rate — the fixture behind the probe CSV and
 * counter-track goldens.
 */
std::shared_ptr<const Waveform>
goldenWaveform()
{
    CampaignSpec spec;
    spec.traces.push_back(
        TraceSpec::library("video-playback-trace", 42));
    spec.platforms = {fanlessTabletPreset()};
    spec.pdns = {PdnKind::FlexWatts};
    spec.mode = SimMode::Pmu;
    spec.probes.push_back(ProbeSpec());

    ParallelRunner serial(1);
    CampaignResult result = CampaignEngine(serial).run(spec);
    return result.cells.at(0).waveform;
}

TEST(GoldenFileTest, ProbeWaveformCsv)
{
    std::shared_ptr<const Waveform> waveform = goldenWaveform();
    ASSERT_NE(waveform, nullptr);
    checkGolden("probe_waveform.csv", writeWaveformCsv(*waveform));
}

TEST(GoldenFileTest, ProbeCounterTracks)
{
    std::shared_ptr<const Waveform> waveform = goldenWaveform();
    ASSERT_NE(waveform, nullptr);
    checkGolden("probe_counters.json",
                writeJson(counterTrackDocument(
                    waveformCounterEvents(*waveform))));
}

TEST(GoldenFileTest, SummaryTable)
{
    // The same table pdnspot_campaign --summary prints, so the
    // CLI-facing summary format is pinned alongside the CSVs.
    BatteryModel battery(wattHours(50.0));
    AsciiTable table({"PDN", "cells", "supply (J)", "mean ETEE",
                      "switches", "life @50Wh (h)"});
    for (const CampaignPdnSummary &s :
         goldenResult().summarizeByPdn(battery)) {
        table.addRow({pdnKindToString(s.pdn),
                      std::to_string(s.cells),
                      AsciiTable::num(inJoules(s.supplyEnergy), 2),
                      AsciiTable::percent(s.meanEtee(), 1),
                      std::to_string(s.modeSwitches),
                      AsciiTable::num(s.batteryLifeHours, 1)});
    }
    std::ostringstream out;
    table.print(out);
    checkGolden("summary.txt", out.str());
}

} // namespace
} // namespace pdnspot
