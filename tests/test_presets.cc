/**
 * @file
 * Sanity tests for the named PlatformConfig presets: TDPs inside the
 * operating-point model's span, distinct CSV-safe names, and working
 * operating points / PDN evaluations on platforms built from them.
 */

#include <set>

#include <gtest/gtest.h>

#include "common/csv.hh"
#include "common/logging.hh"
#include "pdnspot/platform.hh"

namespace pdnspot
{
namespace
{

TEST(PlatformPresetsTest, ThreePresetsWithPaperTdps)
{
    const std::vector<PlatformConfig> &presets = allPlatformPresets();
    ASSERT_EQ(presets.size(), 3u);
    EXPECT_EQ(inWatts(presets[0].tdp), 4.0);
    EXPECT_EQ(inWatts(presets[1].tdp), 15.0);
    EXPECT_EQ(inWatts(presets[2].tdp), 45.0);
}

TEST(PlatformPresetsTest, NamesAreDistinctAndCsvSafe)
{
    std::set<std::string> names;
    for (const PlatformConfig &cfg : allPlatformPresets()) {
        EXPECT_FALSE(cfg.name.empty());
        EXPECT_TRUE(csvFieldSafe(cfg.name)) << cfg.name;
        EXPECT_TRUE(names.insert(cfg.name).second)
            << "duplicate preset name " << cfg.name;
    }
}

TEST(PlatformPresetsTest, TdpsWithinModelSpanAndParamsSane)
{
    for (const PlatformConfig &cfg : allPlatformPresets()) {
        EXPECT_GE(cfg.tdp, OperatingPointModel::minTdp())
            << cfg.name;
        EXPECT_LE(cfg.tdp, OperatingPointModel::maxTdp())
            << cfg.name;
        EXPECT_GT(cfg.pdnParams.supplyVoltage, volts(0.0))
            << cfg.name;
        EXPECT_GT(cfg.predictorHysteresis, 0.0) << cfg.name;
    }
}

TEST(PlatformPresetsTest, LookupByNameRoundTrips)
{
    for (const PlatformConfig &cfg : allPlatformPresets()) {
        PlatformConfig found = platformPresetByName(cfg.name);
        EXPECT_EQ(found.name, cfg.name);
        EXPECT_EQ(found.tdp, cfg.tdp);
    }
    EXPECT_THROW(platformPresetByName("no-such-platform"),
                 ConfigError);
}

TEST(PlatformPresetsTest, OperatingPointsBuildAtEachPresetTdp)
{
    for (const PlatformConfig &cfg : allPlatformPresets()) {
        Platform platform(cfg);
        EXPECT_EQ(platform.config().name, cfg.name);

        const OperatingPointModel &opm = platform.operatingPoints();
        EXPECT_GT(inGigahertz(opm.coreBaseFrequency(cfg.tdp)), 0.0)
            << cfg.name;

        OperatingPointModel::Query q;
        q.tdp = cfg.tdp;
        PlatformState state = opm.build(q);
        EXPECT_GT(state.totalNominalPower(), watts(0.0)) << cfg.name;

        // Every PDN must produce a physical ETEE at the preset's
        // nominal operating point.
        for (PdnKind kind : allPdnKinds) {
            double etee = platform.pdn(kind).evaluate(state).etee();
            EXPECT_GT(etee, 0.0)
                << cfg.name << " " << toString(kind);
            EXPECT_LE(etee, 1.0)
                << cfg.name << " " << toString(kind);
        }
    }
}

TEST(PlatformPresetsTest, FanlessTabletUsesLowTemperaturePolicy)
{
    // The 4-8 W fan-less platforms run the 80 C junction policy, the
    // 45 W H-series the 100 C policy (operating-point model docs).
    Platform tablet(fanlessTabletPreset());
    Platform hseries(hSeriesPreset());
    const OperatingPointModel &opm = tablet.operatingPoints();
    EXPECT_LT(
        opm.defaultTj(fanlessTabletPreset().tdp).degrees(),
        hseries.operatingPoints().defaultTj(hSeriesPreset().tdp)
            .degrees());
}

} // namespace
} // namespace pdnspot
