/**
 * @file
 * Adaptive-laptop demo: run a synthetic "day in the life" client
 * trace through the interval simulator with the full FlexWatts stack
 * (activity sensors -> Algorithm 1 -> 94 us C6 switch flow) and
 * compare against the oracle and the static PDNs.
 *
 * Usage: adaptive_laptop [tdp_watts] [seed]   (default 15, 2026)
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "pdnspot/platform.hh"
#include "sim/interval_simulator.hh"
#include "workload/trace_generator.hh"

using namespace pdnspot;

int
main(int argc, char **argv)
{
    double tdp_w = argc > 1 ? std::atof(argv[1]) : 15.0;
    uint64_t seed = argc > 2
                        ? static_cast<uint64_t>(std::atoll(argv[2]))
                        : 2026;

    Platform platform;
    IntervalSimulator sim(platform.operatingPoints(), watts(tdp_w));

    TraceGenerator generator(seed);
    PhaseTrace trace = generator.dayInTheLife();
    std::cout << "Trace '" << trace.name() << "': "
              << trace.phases().size() << " phases, "
              << AsciiTable::num(inSeconds(trace.totalDuration()), 2)
              << "s simulated at " << tdp_w << "W TDP\n\n";

    // FlexWatts under realistic PMU control.
    PmuConfig cfg;
    cfg.tdp = watts(tdp_w);
    Pmu pmu(cfg, platform.predictor());
    SimResult flex = sim.run(trace, platform.flexWatts(), pmu);

    // Upper bound: oracle mode selection with free switches.
    SimResult oracle = sim.runOracle(trace, platform.flexWatts());

    AsciiTable t({"Configuration", "energy (J)", "avg power (W)",
                  "avg ETEE", "switches"});
    auto add = [&](const std::string &name, const SimResult &r) {
        t.addRow({name, AsciiTable::num(inJoules(r.supplyEnergy), 3),
                  AsciiTable::num(inWatts(r.averagePower()), 3),
                  AsciiTable::percent(r.averageEtee(), 1),
                  std::to_string(r.modeSwitches)});
    };
    add("FlexWatts (PMU + Algorithm 1)", flex);
    add("FlexWatts (oracle)", oracle);
    for (PdnKind kind :
         {PdnKind::IVR, PdnKind::MBVR, PdnKind::LDO,
          PdnKind::IplusMBVR}) {
        add(toString(kind) + " (static)",
            sim.run(trace, platform.pdn(kind)));
    }
    t.print(std::cout);

    std::cout << "\nFlexWatts mode residency: "
              << AsciiTable::percent(
                     flex.residency(HybridMode::IvrMode) /
                         trace.totalDuration(),
                     1)
              << " IVR-Mode, "
              << AsciiTable::percent(
                     flex.residency(HybridMode::LdoMode) /
                         trace.totalDuration(),
                     1)
              << " LDO-Mode; switch overhead "
              << AsciiTable::num(
                     inMicroseconds(flex.switchOverheadTime), 0)
              << "us across " << flex.modeSwitches << " switches\n";

    SimResult ivr = sim.run(trace, platform.pdn(PdnKind::IVR));
    std::cout << "Energy saved vs the IVR PDN: "
              << AsciiTable::percent(
                     1.0 - inJoules(flex.supplyEnergy) /
                               inJoules(ivr.supplyEnergy),
                     1)
              << "\n";
    return 0;
}
