/**
 * @file
 * Campaign study: the batch-simulation subsystem end to end.
 *
 * Runs the standard nine-trace corpus across the three platform
 * presets and all five PDN architectures under realistic PMU control
 * (9 x 3 x 5 = 135 cells), prints per-PDN summary statistics, then
 * demonstrates the CSV round-trip: export, re-import, verify the
 * re-imported result is bit-identical to the in-memory one.
 *
 * Usage: campaign_study [csv_path]   (default: no CSV file written)
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "campaign/campaign_engine.hh"
#include "common/logging.hh"
#include "common/table.hh"

using namespace pdnspot;

int
main(int argc, char **argv)
{
    CampaignSpec spec;
    spec.addTraces(standardCampaignTraces(42));
    spec.platforms = allPlatformPresets();
    spec.pdns.assign(allPdnKinds.begin(), allPdnKinds.end());
    spec.mode = SimMode::Pmu;

    std::cout << "Campaign: " << spec.traces.size() << " traces x "
              << spec.platforms.size() << " platforms x "
              << spec.pdns.size() << " PDNs = " << spec.cellCount()
              << " cells (" << toString(spec.mode) << " mode)\n\n";

    CampaignResult result = CampaignEngine().run(spec);

    BatteryModel battery(wattHours(50.0));
    AsciiTable summary({"PDN", "cells", "supply (J)", "mean ETEE",
                        "switches", "life @50Wh (h)"});
    for (const CampaignPdnSummary &s :
         result.summarizeByPdn(battery)) {
        summary.addRow({toString(s.pdn), std::to_string(s.cells),
                        AsciiTable::num(inJoules(s.supplyEnergy), 2),
                        AsciiTable::percent(s.meanEtee(), 1),
                        std::to_string(s.modeSwitches),
                        AsciiTable::num(s.batteryLifeHours, 1)});
    }
    summary.print(std::cout);

    // Per-platform view of the FlexWatts-vs-IVR energy win.
    std::cout << "\nFlexWatts supply energy vs IVR, per platform:\n\n";
    AsciiTable perPlatform({"Platform", "IVR (J)", "FlexWatts (J)",
                            "saving"});
    for (const PlatformConfig &pf : spec.platforms) {
        Energy ivr, flex;
        for (const TraceSpec &trace : spec.traces) {
            ivr += result.cell(trace.name(), pf.name, PdnKind::IVR)
                       .sim.supplyEnergy;
            flex += result
                        .cell(trace.name(), pf.name,
                              PdnKind::FlexWatts)
                        .sim.supplyEnergy;
        }
        perPlatform.addRow({pf.name,
                            AsciiTable::num(inJoules(ivr), 2),
                            AsciiTable::num(inJoules(flex), 2),
                            AsciiTable::percent(1.0 - flex / ivr,
                                                1)});
    }
    perPlatform.print(std::cout);

    // CSV round-trip: export, re-import, compare bit-exactly.
    std::stringstream csv;
    result.writeCsv(csv);
    CampaignResult reread = CampaignResult::readCsv(csv);
    std::cout << "\nCSV round-trip: "
              << (reread == result ? "re-imported result is "
                                     "bit-identical"
                                   : "MISMATCH after re-import")
              << " (" << result.cells.size() << " rows)\n";

    if (argc > 1) {
        std::ofstream out(argv[1]);
        if (!out)
            fatal(std::string("cannot open ") + argv[1]);
        result.writeCsv(out);
        std::cout << "Wrote " << argv[1] << "\n";
    }
    return reread == result ? 0 : 1;
}
