/**
 * @file
 * Export the paper's figure data as CSV files for plotting.
 *
 * Writes one CSV per figure panel into the given directory (default
 * "figures/"): ETEE-vs-AR panels (Fig. 4a-i axes), ETEE-vs-TDP
 * crossover curves, the C-state ladder (Fig. 4j), and the normalized
 * BOM/area series (Fig. 8d/8e).
 *
 * Usage: export_figures [output_dir]
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "pdnspot/experiments.hh"
#include "pdnspot/sweep.hh"

using namespace pdnspot;

namespace
{

void
writeFile(const std::filesystem::path &path, const SweepResult &r)
{
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("cannot open " + path.string());
    r.writeCsv(os);
    std::cout << "wrote " << path.string() << "\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::filesystem::path dir = argc > 1 ? argv[1] : "figures";
    std::filesystem::create_directories(dir);

    Platform platform;
    SweepEngine engine(platform);

    std::vector<PdnKind> all(allPdnKinds.begin(), allPdnKinds.end());
    std::vector<PdnKind> classic(classicPdnKinds.begin(),
                                 classicPdnKinds.end());
    std::vector<double> ars = {0.40, 0.45, 0.50, 0.55, 0.60,
                               0.65, 0.70, 0.75, 0.80};
    std::vector<double> tdps = {4, 6, 8, 10, 14, 18, 22,
                                25, 30, 36, 42, 50};

    // Fig. 4(a-i): ETEE vs AR per workload type and TDP.
    for (WorkloadType type :
         {WorkloadType::SingleThread, WorkloadType::MultiThread,
          WorkloadType::Graphics}) {
        for (double tdp : {4.0, 18.0, 50.0}) {
            auto r = engine.eteeVsAr(watts(tdp), type, ars, classic);
            writeFile(dir / ("fig4_etee_vs_ar_" + toString(type) +
                             "_" + std::to_string(int(tdp)) + "W.csv"),
                      r);
        }
    }

    // Crossover view: ETEE vs TDP for all five PDNs.
    writeFile(dir / "etee_vs_tdp_cpu.csv",
              engine.eteeVsTdp(WorkloadType::MultiThread, 0.56, tdps,
                               all));
    writeFile(dir / "etee_vs_tdp_gfx.csv",
              engine.eteeVsTdp(WorkloadType::Graphics, 0.56, tdps,
                               all));

    // Fig. 4(j): package C-state ladder.
    writeFile(dir / "fig4j_etee_vs_cstate.csv",
              engine.eteeVsCState(classic));

    // Fig. 8(d)/(e): normalized BOM and board area.
    std::vector<double> eval_tdps(evaluationTdpsW.begin(),
                                  evaluationTdpsW.end());
    writeFile(dir / "fig8d_bom_vs_tdp.csv",
              engine.bomVsTdp(eval_tdps, all));
    writeFile(dir / "fig8e_area_vs_tdp.csv",
              engine.areaVsTdp(eval_tdps, all));

    std::cout << "done.\n";
    return 0;
}
