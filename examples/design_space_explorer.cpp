/**
 * @file
 * Architecture-space exploration with PDNspot: for a chosen workload
 * class, sweep TDP x AR and report which PDN wins each cell on ETEE,
 * then summarize performance, BOM and area against the IVR baseline.
 *
 * This is the "multi-dimensional architecture-space exploration" use
 * case the paper positions PDNspot for (Sec. 3).
 *
 * Usage: design_space_explorer [cpu|gfx]   (default cpu)
 */

#include <iostream>
#include <string>

#include "common/table.hh"
#include "pdnspot/experiments.hh"
#include "pdnspot/platform.hh"
#include "workload/gfx_3dmark06.hh"
#include "workload/spec_cpu2006.hh"

using namespace pdnspot;

int
main(int argc, char **argv)
{
    const std::string flavor = argc > 1 ? argv[1] : "cpu";
    const bool graphics = flavor == "gfx";
    const WorkloadType type = graphics ? WorkloadType::Graphics
                                       : WorkloadType::MultiThread;

    Platform platform;

    std::cout << "Best PDN per (TDP, AR) cell on ETEE - "
              << toString(type) << " workloads\n\n";
    AsciiTable grid({"TDP \\ AR", "40%", "50%", "60%", "70%", "80%"});
    for (double tdp : evaluationTdpsW) {
        std::vector<std::string> row = {
            AsciiTable::num(tdp, 0) + "W"};
        for (double ar = 0.40; ar <= 0.801; ar += 0.10) {
            OperatingPointModel::Query q;
            q.tdp = watts(tdp);
            q.type = type;
            q.ar = ar;
            PlatformState s = platform.operatingPoints().build(q);

            PdnKind best = PdnKind::IVR;
            double best_etee = 0.0;
            for (PdnKind kind : allPdnKinds) {
                double etee = platform.pdn(kind).evaluate(s).etee();
                if (etee > best_etee) {
                    best_etee = etee;
                    best = kind;
                }
            }
            row.push_back(toString(best) + " (" +
                          AsciiTable::percent(best_etee, 0) + ")");
        }
        grid.addRow(row);
    }
    grid.print(std::cout);

    const auto &suite = graphics ? gfx3dmark06() : specCpu2006();
    std::cout << "\nSummary vs the IVR baseline ("
              << (graphics ? "3DMark06" : "SPEC CPU2006") << "):\n\n";
    AsciiTable summary({"TDP", "best perf PDN", "gain", "FlexWatts",
                        "FlexWatts BOM", "FlexWatts area"});
    for (double tdp : evaluationTdpsW) {
        PdnKind best = PdnKind::IVR;
        double best_perf = 1.0;
        for (PdnKind kind : allPdnKinds) {
            double perf = suiteMeanRelativePerf(platform, kind,
                                                watts(tdp), suite);
            if (perf > best_perf) {
                best_perf = perf;
                best = kind;
            }
        }
        double flex = suiteMeanRelativePerf(
            platform, PdnKind::FlexWatts, watts(tdp), suite);
        summary.addRow(
            {AsciiTable::num(tdp, 0) + "W", toString(best),
             AsciiTable::percent(best_perf - 1.0, 1),
             AsciiTable::percent(flex - 1.0, 1),
             AsciiTable::num(
                 normalizedBom(platform, PdnKind::FlexWatts,
                               watts(tdp)),
                 2) + "x",
             AsciiTable::num(
                 normalizedArea(platform, PdnKind::FlexWatts,
                                watts(tdp)),
                 2) + "x"});
    }
    summary.print(std::cout);
    return 0;
}
