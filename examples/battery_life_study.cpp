/**
 * @file
 * Battery-life study: project how long a battery lasts under each
 * PDN for the four battery-life workloads of the paper, and break a
 * video-playback frame down state by state to show where the IVR
 * PDN loses (paper Sec. 5, Observation 3).
 *
 * Usage: battery_life_study [battery_wh]   (default 50)
 */

#include <cstdlib>
#include <iostream>

#include "campaign/campaign_engine.hh"
#include "common/table.hh"
#include "pdnspot/experiments.hh"
#include "pdnspot/platform.hh"
#include "sim/battery_model.hh"

using namespace pdnspot;

int
main(int argc, char **argv)
{
    double battery_wh = argc > 1 ? std::atof(argv[1]) : 50.0;

    // The same preset drives both the campaign below and the frame
    // anatomy table, so every number in this study shares one
    // platform configuration.
    Platform platform(ultraportablePreset());
    BatteryModel battery(wattHours(battery_wh));

    // One campaign covers the whole table: the four battery-life
    // profiles (as frame traces) x the reference platform x all five
    // PDNs, simulated statically.
    CampaignSpec spec;
    for (const BatteryProfile &profile : batteryLifeWorkloads())
        spec.traces.push_back(TraceSpec::profile(
            profile.name, milliseconds(33.3), 4));
    spec.platforms = {ultraportablePreset()};
    spec.pdns.assign(allPdnKinds.begin(), allPdnKinds.end());
    spec.mode = SimMode::Static;
    CampaignResult result = CampaignEngine().run(spec);
    const std::string &pfName = spec.platforms.front().name;

    std::cout << "Battery life with a " << battery_wh
              << " Wh pack (hours)\n\n";
    AsciiTable life({"Workload", "IVR", "MBVR", "LDO", "I+MBVR",
                     "FlexWatts"});
    for (const BatteryProfile &profile : batteryLifeWorkloads()) {
        std::string trace = profile.name + "-trace";
        std::vector<std::string> row = {profile.name};
        for (PdnKind kind : allPdnKinds) {
            Power avg = result.cell(trace, pfName, kind)
                            .sim.averagePower();
            row.push_back(AsciiTable::num(battery.lifeHours(avg), 1));
        }
        life.addRow(row);
    }
    life.print(std::cout);

    std::cout << "\nVideo-playback frame anatomy (state-by-state):\n\n";
    AsciiTable anatomy({"State", "residency", "nominal (W)",
                        "IVR ETEE", "FlexWatts ETEE",
                        "FlexWatts mode"});
    const OperatingPointModel &opm = platform.operatingPoints();
    for (const auto &[state, share] : videoPlayback().residencies) {
        OperatingPointModel::Query q;
        q.tdp = watts(15.0);
        q.cstate = state;
        PlatformState s = opm.build(q);
        EteeResult ivr = platform.pdn(PdnKind::IVR).evaluate(s);
        const FlexWattsPdn &fw = platform.flexWatts();
        HybridMode mode = fw.bestMode(s);
        EteeResult flex = fw.evaluate(s, mode);
        anatomy.addRow({toString(state),
                        AsciiTable::percent(share, 0),
                        AsciiTable::num(inWatts(s.totalNominalPower()),
                                        2),
                        AsciiTable::percent(ivr.etee(), 1),
                        AsciiTable::percent(flex.etee(), 1),
                        toString(mode)});
    }
    anatomy.print(std::cout);

    const std::string video = videoPlayback().name + "-trace";
    Power p_ivr = result.cell(video, pfName, PdnKind::IVR)
                      .sim.averagePower();
    Power p_flex = result.cell(video, pfName, PdnKind::FlexWatts)
                       .sim.averagePower();
    std::cout << "\nFlexWatts cuts video-playback average power by "
              << AsciiTable::percent(1.0 - p_flex / p_ivr, 1)
              << " vs the IVR PDN ("
              << AsciiTable::num(inWatts(p_ivr), 3) << "W -> "
              << AsciiTable::num(inWatts(p_flex), 3) << "W).\n";
    return 0;
}
