/**
 * @file
 * PDNspot quickstart: build a platform, evaluate the five PDN
 * architectures at one operating point, and print what FlexWatts's
 * mode predictor would do there.
 *
 * Usage: quickstart [tdp_watts]   (default 15)
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "pdnspot/platform.hh"

using namespace pdnspot;

int
main(int argc, char **argv)
{
    double tdp_w = argc > 1 ? std::atof(argv[1]) : 15.0;

    // 1. A Platform bundles every model: operating points, the five
    //    PDN topologies, the FlexWatts firmware tables, performance
    //    and cost models.
    Platform platform;

    // 2. Describe the operating point to evaluate.
    OperatingPointModel::Query query;
    query.tdp = watts(tdp_w);
    query.type = WorkloadType::MultiThread;
    query.ar = 0.56; // the paper's reference application ratio
    PlatformState state = platform.operatingPoints().build(query);

    std::cout << "Operating point: " << tdp_w << "W TDP, "
              << toString(query.type) << ", AR "
              << AsciiTable::percent(query.ar, 0) << ", nominal load "
              << AsciiTable::num(inWatts(state.totalNominalPower()), 2)
              << "W\n\n";

    // 3. Evaluate every PDN architecture at that point.
    AsciiTable table({"PDN", "ETEE", "input power (W)",
                      "chip current (A)"});
    for (PdnKind kind : allPdnKinds) {
        EteeResult r = platform.pdn(kind).evaluate(state);
        table.addRow({toString(kind),
                      AsciiTable::percent(r.etee(), 1),
                      AsciiTable::num(inWatts(r.inputPower), 2),
                      AsciiTable::num(inAmps(r.chipInputCurrent), 1)});
    }
    table.print(std::cout);

    // 4. Ask FlexWatts which hybrid mode it would run here.
    HybridMode mode = platform.flexWatts().bestMode(state);
    std::cout << "\nFlexWatts hybrid rail mode at this point: "
              << toString(mode) << "\n";

    // 5. ... and what Algorithm 1 would predict from firmware tables.
    PredictorInputs inputs;
    inputs.tdp = query.tdp;
    inputs.ar = query.ar;
    inputs.workloadType = query.type;
    std::cout << "Algorithm 1 prediction from the ETEE tables:  "
              << toString(platform.predictor().predict(inputs))
              << "\n";
    return 0;
}
