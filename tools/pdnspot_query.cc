/**
 * @file
 * pdnspot_query: lookup and filtering over a result archive.
 *
 * The read side of the campaign service: everything pdnspot_launch
 * (or a bare `pdnspot_campaign --report` + `ingest`) deposited in a
 * ResultArchive (src/store/result_archive.hh) is answerable here —
 * by spec content hash, platform preset, PDN kind, trace name, git
 * revision, or a metric predicate over the per-PDN summaries — with
 * table or CSV output. `csv` reassembles a filtered run's payload:
 * when the filters select a complete shard set, the shards are
 * concatenated in order, reproducing the unsharded campaign CSV
 * byte for byte.
 *
 * Usage: pdnspot_query <archive-dir> <command> [options]
 *   list            one row per archived run (id, tool, shard,
 *                   spec hash, traces, platforms, rows)
 *   summaries       one row per (run, PDN) summary — the metric
 *                   surface --where predicates filter on
 *   show <id>       print the stored report document (any unique
 *                   id prefix)
 *   csv [<id>]      payload bytes: a single run by id prefix, or
 *                   the filtered entries as one complete shard set
 *   ingest <report.json> [--csv-file <f>]
 *                   archive a report (+ optional CSV payload);
 *                   prints the run id
 *   rebuild-index   regenerate index.jsonl from the stored reports
 *
 * And without an archive:
 *   pdnspot_query hash <file>   print the file's spec content hash
 *                               ("fnv1a64:<16 hex>")
 *
 * Filters (list, summaries, csv):
 *   --spec-hash <h>  spec content hash, prefix ok, with or without
 *                    the "fnv1a64:" tag
 *   --preset <name>  platform/preset name carried by the run
 *   --pdn <kind>     per-PDN summary kind (summaries/csv: keeps the
 *                    run; list: matches any summary row)
 *   --trace <name>   trace name carried by the run
 *   --tool <name> / --git-rev <rev>
 *   --where <metric><op><value>
 *                    metric predicate over summary rows; metrics:
 *                    battery_life_h, mean_power_w, mean_etee,
 *                    supply_energy_j, mode_switches, cells;
 *                    ops: < <= > >= = !=  (repeatable, ANDed)
 *
 * Output: --format table|csv (default table), -o <path> ("-" =
 * stdout). Exit codes: 0 success (even when a filter matches
 * nothing — the empty table is the answer), 1 runtime/config
 * error, 2 usage, 3 internal error.
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "cli_common.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "config/json.hh"
#include "obs/run_report.hh"
#include "store/result_archive.hh"

namespace
{

using namespace pdnspot;

constexpr const char *usageText =
    "usage: pdnspot_query <archive-dir> <command> [options]\n"
    "  commands:\n"
    "    list                       one row per archived run\n"
    "    summaries                  one row per (run, PDN) summary\n"
    "    show <id-prefix>           print the stored report\n"
    "    csv [<id-prefix>]          payload bytes (filtered runs\n"
    "                               concatenate as one shard set)\n"
    "    ingest <report.json> [--csv-file <f>]\n"
    "                               archive a report, print its id\n"
    "    rebuild-index              regenerate index.jsonl\n"
    "  filters (list/summaries/csv):\n"
    "    --spec-hash <h> --preset <name> --pdn <kind>\n"
    "    --trace <name> --tool <name> --git-rev <rev>\n"
    "    --where <metric><op><value>   (battery_life_h,\n"
    "        mean_power_w, mean_etee, supply_energy_j,\n"
    "        mode_switches, cells; ops < <= > >= = !=)\n"
    "  output: [--format table|csv] [-o <path>]\n"
    "       pdnspot_query hash <file>\n"
    "       pdnspot_query --version\n";

constexpr cli::ToolInfo tool{"pdnspot_query", usageText};

[[noreturn]] void
usageError(const std::string &message)
{
    cli::usageError(tool, message);
}

/** One --where predicate, parsed. */
struct MetricPredicate
{
    std::string metric;
    enum class Op
    {
        Lt,
        Le,
        Gt,
        Ge,
        Eq,
        Ne,
    } op;
    double value;

    bool
    holds(double x) const
    {
        switch (op) {
        case Op::Lt: return x < value;
        case Op::Le: return x <= value;
        case Op::Gt: return x > value;
        case Op::Ge: return x >= value;
        case Op::Eq: return x == value;
        case Op::Ne: return x != value;
        }
        return false;
    }
};

double
summaryMetric(const ArchivePdnSummary &row,
              const std::string &metric)
{
    if (metric == "battery_life_h")
        return row.batteryLifeHours;
    if (metric == "mean_power_w")
        return row.meanPowerW;
    if (metric == "mean_etee")
        return row.meanEtee;
    if (metric == "supply_energy_j")
        return row.supplyEnergyJ;
    if (metric == "mode_switches")
        return static_cast<double>(row.modeSwitches);
    if (metric == "cells")
        return static_cast<double>(row.cells);
    usageError("unknown --where metric \"" + metric +
               "\" (valid: battery_life_h, mean_power_w, "
               "mean_etee, supply_energy_j, mode_switches, cells)");
}

MetricPredicate
parseWhere(const std::string &expr)
{
    // Longest operators first so "<=" does not parse as "<" + "=".
    static const std::pair<const char *, MetricPredicate::Op>
        ops[] = {{"<=", MetricPredicate::Op::Le},
                 {">=", MetricPredicate::Op::Ge},
                 {"!=", MetricPredicate::Op::Ne},
                 {"<", MetricPredicate::Op::Lt},
                 {">", MetricPredicate::Op::Gt},
                 {"=", MetricPredicate::Op::Eq}};
    for (const auto &[text, op] : ops) {
        size_t at = expr.find(text);
        if (at == std::string::npos || at == 0)
            continue;
        MetricPredicate pred;
        pred.metric = expr.substr(0, at);
        pred.op = op;
        std::string rhs = expr.substr(at + std::strlen(text));
        std::optional<double> value = cli::parseDouble(rhs);
        if (!value)
            usageError("--where value \"" + rhs +
                       "\" is not a finite number");
        pred.value = *value;
        summaryMetric(ArchivePdnSummary{}, pred.metric); // validate
        return pred;
    }
    usageError("--where expects <metric><op><value>, got \"" +
               expr + "\"");
}

/** All filters a query command can carry. */
struct Filters
{
    std::string specHash; ///< prefix, "fnv1a64:" tag optional
    std::string preset;
    std::string pdn;
    std::string trace;
    std::string tool;
    std::string gitRev;
    std::vector<MetricPredicate> where;
};

/** Does `entry` have a summary row passing --pdn and --where? */
bool
summaryRowMatches(const Filters &f, const ArchivePdnSummary &row)
{
    if (!f.pdn.empty() && row.pdn != f.pdn)
        return false;
    for (const MetricPredicate &pred : f.where)
        if (!pred.holds(summaryMetric(row, pred.metric)))
            return false;
    return true;
}

bool
entryMatches(const Filters &f, const ArchiveEntry &entry)
{
    if (!f.specHash.empty()) {
        std::string want = f.specHash;
        std::string have = entry.specHash;
        // Tolerate the "fnv1a64:" tag on either side of a prefix
        // compare: users paste both tagged and bare hashes.
        const std::string tag = "fnv1a64:";
        if (want.rfind(tag, 0) != 0 && have.rfind(tag, 0) == 0)
            have = have.substr(tag.size());
        if (have.rfind(want, 0) != 0)
            return false;
    }
    if (!f.preset.empty() &&
        std::find(entry.platforms.begin(), entry.platforms.end(),
                  f.preset) == entry.platforms.end())
        return false;
    if (!f.trace.empty() &&
        std::find(entry.traces.begin(), entry.traces.end(),
                  f.trace) == entry.traces.end())
        return false;
    if (!f.tool.empty() && entry.tool != f.tool)
        return false;
    if (!f.gitRev.empty() && entry.gitRev != f.gitRev)
        return false;
    if (f.pdn.empty() && f.where.empty())
        return true;
    return std::any_of(entry.summaries.begin(),
                       entry.summaries.end(),
                       [&](const ArchivePdnSummary &row) {
                           return summaryRowMatches(f, row);
                       });
}

struct Options
{
    std::string archiveDir;
    std::string command;
    std::string operand; ///< id prefix / report path / hash file
    std::string csvFile; ///< ingest --csv-file
    Filters filters;
    std::string format = "table";
    std::string outPath = "-";
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    auto value = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            usageError(std::string(flag) + " needs a value");
        return argv[++i];
    };
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            std::cout << usageText;
            std::exit(0);
        } else if (arg == "--version") {
            cli::printVersion(tool);
            std::exit(0);
        } else if (arg == "--spec-hash") {
            opts.filters.specHash = value(i, "--spec-hash");
        } else if (arg == "--preset") {
            opts.filters.preset = value(i, "--preset");
        } else if (arg == "--pdn") {
            opts.filters.pdn = value(i, "--pdn");
        } else if (arg == "--trace") {
            opts.filters.trace = value(i, "--trace");
        } else if (arg == "--tool") {
            opts.filters.tool = value(i, "--tool");
        } else if (arg == "--git-rev") {
            opts.filters.gitRev = value(i, "--git-rev");
        } else if (arg == "--where") {
            opts.filters.where.push_back(
                parseWhere(value(i, "--where")));
        } else if (arg == "--csv-file") {
            opts.csvFile = value(i, "--csv-file");
        } else if (arg == "--format") {
            opts.format = value(i, "--format");
            if (opts.format != "table" && opts.format != "csv")
                usageError("--format must be table or csv, got \"" +
                           opts.format + "\"");
        } else if (arg == "-o") {
            opts.outPath = value(i, "-o");
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            usageError("unknown option \"" + arg + "\"");
        } else {
            positional.push_back(arg);
        }
    }

    if (positional.empty())
        usageError("missing archive directory (or \"hash <file>\")");

    // "hash <file>" has no archive directory.
    if (positional[0] == "hash") {
        opts.command = "hash";
        if (positional.size() != 2)
            usageError("hash expects exactly one file argument");
        opts.operand = positional[1];
        return opts;
    }

    if (positional.size() < 2)
        usageError("missing command after archive directory");
    opts.archiveDir = positional[0];
    opts.command = positional[1];

    static const char *commands[] = {"list", "summaries", "show",
                                     "csv", "ingest",
                                     "rebuild-index"};
    if (std::find_if(std::begin(commands), std::end(commands),
                     [&](const char *c) {
                         return opts.command == c;
                     }) == std::end(commands))
        usageError("unknown command \"" + opts.command + "\"");

    if (positional.size() > 3)
        usageError("too many arguments");
    if (positional.size() == 3) {
        if (opts.command != "show" && opts.command != "csv" &&
            opts.command != "ingest")
            usageError("command \"" + opts.command +
                       "\" takes no operand");
        opts.operand = positional[2];
    }
    if ((opts.command == "show" || opts.command == "ingest") &&
        opts.operand.empty())
        usageError("command \"" + opts.command +
                   "\" needs an operand");
    return opts;
}

/** -o plumbing shared by every printing command. */
class Output
{
  public:
    explicit Output(const std::string &path)
    {
        if (path != "-") {
            _file.open(path, std::ios::binary);
            if (!_file)
                fatal(strprintf("cannot open output file \"%s\"",
                                path.c_str()));
        }
        _path = path;
    }

    std::ostream &
    stream()
    {
        return _path != "-" ? _file : std::cout;
    }

    void
    finish()
    {
        stream().flush();
        if (_path != "-") {
            _file.close();
            if (!_file)
                fatal(strprintf("error writing \"%s\"",
                                _path.c_str()));
        }
    }

  private:
    std::string _path;
    std::ofstream _file;
};

std::string
joinNames(const std::vector<std::string> &names)
{
    return joinStrings(names, "+");
}

template <typename Table>
void
emitListRows(Table &table, const std::vector<ArchiveEntry> &rows)
{
    for (const ArchiveEntry &e : rows)
        table.addRow({e.id, e.tool, e.gitRev,
                      strprintf("%zu/%zu", e.shardIndex,
                                e.shardCount),
                      e.specHash, joinNames(e.traces),
                      joinNames(e.platforms),
                      strprintf("%zu", e.rows),
                      AsciiTable::num(e.wallSeconds, 3)});
}

void
runList(const Options &opts, const std::vector<ArchiveEntry> &rows)
{
    std::vector<std::string> headers = {
        "id",        "tool",      "git_rev",
        "shard",     "spec_hash", "traces",
        "platforms", "rows",      "wall_s"};
    Output out(opts.outPath);
    if (opts.format == "csv") {
        CsvWriter csv(headers);
        emitListRows(csv, rows);
        csv.write(out.stream());
    } else {
        AsciiTable table(headers);
        emitListRows(table, rows);
        table.print(out.stream());
    }
    out.finish();
}

template <typename Table>
void
emitSummaryRows(Table &table, const Options &opts,
                const std::vector<ArchiveEntry> &rows)
{
    for (const ArchiveEntry &e : rows)
        for (const ArchivePdnSummary &s : e.summaries) {
            if (!summaryRowMatches(opts.filters, s))
                continue;
            table.addRow({e.id,
                          strprintf("%zu/%zu", e.shardIndex,
                                    e.shardCount),
                          s.pdn, strprintf("%llu",
                                           (unsigned long long)
                                               s.cells),
                          AsciiTable::num(s.supplyEnergyJ, 3),
                          AsciiTable::num(s.meanEtee, 4),
                          strprintf("%llu", (unsigned long long)
                                                s.modeSwitches),
                          AsciiTable::num(s.meanPowerW, 3),
                          AsciiTable::num(s.batteryLifeHours, 2)});
        }
}

void
runSummaries(const Options &opts,
             const std::vector<ArchiveEntry> &rows)
{
    std::vector<std::string> headers = {
        "id",           "shard",         "pdn",
        "cells",        "supply_energy_j", "mean_etee",
        "mode_switches", "mean_power_w",  "battery_life_h"};
    Output out(opts.outPath);
    if (opts.format == "csv") {
        CsvWriter csv(headers);
        emitSummaryRows(csv, opts, rows);
        csv.write(out.stream());
    } else {
        AsciiTable table(headers);
        emitSummaryRows(table, opts, rows);
        table.print(out.stream());
    }
    out.finish();
}

void
runCsv(const Options &opts, const ResultArchive &archive,
       std::vector<ArchiveEntry> rows)
{
    if (!opts.operand.empty()) {
        std::optional<ArchiveEntry> entry =
            archive.findRun(opts.operand);
        if (!entry)
            fatal(strprintf("no archived run matches id prefix "
                            "\"%s\"",
                            opts.operand.c_str()));
        Output out(opts.outPath);
        out.stream() << archive.readCsv(*entry);
        out.finish();
        return;
    }
    if (rows.empty())
        fatal("no archived runs match the given filters");
    std::vector<ArchiveEntry> ordered =
        orderShardSet(std::move(rows));
    Output out(opts.outPath);
    for (const ArchiveEntry &entry : ordered)
        out.stream() << archive.readCsv(entry);
    out.finish();
}

int
runCli(const Options &opts)
{
    if (opts.command == "hash") {
        std::cout << "fnv1a64:"
                  << fnv1a64Hex(cli::readFileBytes(opts.operand))
                  << "\n";
        return 0;
    }

    ResultArchive archive(opts.archiveDir);

    if (opts.command == "ingest") {
        std::string csv = opts.csvFile.empty()
                              ? ""
                              : cli::readFileBytes(opts.csvFile);
        std::string id = archive.ingest(
            cli::readFileBytes(opts.operand), csv);
        std::cout << id << "\n";
        return 0;
    }
    if (opts.command == "rebuild-index") {
        archive.rebuildIndex();
        inform(strprintf("rebuilt %s",
                         archive.indexPath().c_str()));
        return 0;
    }
    if (opts.command == "show") {
        std::optional<ArchiveEntry> entry =
            archive.findRun(opts.operand);
        if (!entry)
            fatal(strprintf("no archived run matches id prefix "
                            "\"%s\"",
                            opts.operand.c_str()));
        Output out(opts.outPath);
        out.stream() << writeJson(archive.readReport(entry->id));
        out.finish();
        return 0;
    }

    std::vector<ArchiveEntry> rows;
    for (ArchiveEntry &entry : archive.entries())
        if (entryMatches(opts.filters, entry))
            rows.push_back(std::move(entry));

    if (opts.command == "list")
        runList(opts, rows);
    else if (opts.command == "summaries")
        runSummaries(opts, rows);
    else
        runCsv(opts, archive, std::move(rows));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);
    try {
        return runCli(opts);
    } catch (const ConfigError &e) {
        std::cerr << "pdnspot_query: " << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "pdnspot_query: internal error: " << e.what()
                  << "\n";
        return 3;
    }
}
