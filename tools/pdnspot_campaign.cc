/**
 * @file
 * pdnspot_campaign: run a batch-simulation campaign from a spec file.
 *
 * The file-in/CSV-out driver for the campaign subsystem: loads a
 * JSON campaign spec (src/config/campaign_config.hh), executes the
 * trace × platform × PDN cross-product over the thread pool, and
 * streams the result rows to a CSV file as cells complete — the CSV
 * is byte-identical to CampaignResult::writeCsv over the same
 * campaign at any thread count, so non-C++ tooling can script
 * studies and diff outputs exactly.
 *
 * Usage: pdnspot_campaign <spec.json> [options]
 *   -o <path>        write the campaign CSV to <path> ("-" = stdout,
 *                    the default)
 *   --summary        print the per-PDN summary table, p50/p95/p99
 *                    lines for every histogram metric
 *                    (histogramQuantile, obs/metrics.hh), and the
 *                    memo probe/hit/miss counters to stderr
 *   --battery-wh <x> battery capacity for the summary (default 50)
 *   --threads <n>    thread count (overrides PDNSPOT_THREADS)
 *   --no-memo        disable the per-worker evaluation memo
 *   --trace-dir <d>  resolve relative "file" trace paths against <d>
 *                    (default: the spec file's directory)
 *   --shard k/n      run only shard k of n (1-based): a contiguous
 *                    range of the campaign's canonical cell order.
 *                    Shard 1 carries the CSV header; concatenating
 *                    the n shard CSVs in order is byte-identical to
 *                    the unsharded run
 *   --report <path>  write a provenance-stamped pdnspot-report-1
 *                    JSON run report (obs/run_report.hh): spec echo
 *                    + content hash, git rev, shard/threads, wall
 *                    time, the full metric snapshot, per-PDN
 *                    summaries
 *   --trace-events <path>
 *                    record begin/end spans and write them as
 *                    Chrome/Perfetto trace-event JSON (open in
 *                    https://ui.perfetto.dev or chrome://tracing).
 *                    The timeline is stamped with the shard identity
 *                    (pid = shard index, process_name "shard k/n"),
 *                    so per-shard files merge without colliding
 *   --probe-out <dir>
 *                    export the waveforms captured by the spec's
 *                    "probes" section (obs/probe.hh): one columnar
 *                    CSV per probed cell (<dir>/<cell>.csv,
 *                    obs/waveform_io.hh) plus <dir>/counters.json,
 *                    a Perfetto counter-track document; the counter
 *                    tracks also merge into --trace-events when both
 *                    are given. Without this flag the spec's probes
 *                    are ignored entirely (the zero-overhead path)
 *   --progress       rate-limited cells/sec + ETA heartbeat on
 *                    stderr; auto-disabled when stderr is not a TTY
 *   --quiet          drop info-level messages (same as
 *                    --log-level warn)
 *   --log-level <l>  minimum message severity: info, warn or silent
 *   --version        print the tool version and git revision
 *   --dry-run        load + validate the spec, report the campaign
 *                    shape and per-trace provenance (including any
 *                    transform chains), and exit without simulating
 *   --echo-spec      print the parsed spec back as normalized JSON
 *                    and exit (version line goes to stderr)
 *   --list-traces    print the standard trace library (with --seed)
 *   --list-presets   print the named PlatformConfig presets
 *   --seed <n>       library seed for --list-traces (default 42)
 *
 * None of the observability flags perturb results: the campaign CSV
 * is byte-identical with and without --report/--trace-events/
 * --progress/--probe-out (check.sh verifies this at 1 and 8
 * threads), and the probe outputs themselves are byte-identical at
 * any thread count (cells are delivered in canonical order and all
 * probe timestamps are simulated time).
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "campaign/campaign_engine.hh"
#include "cli_common.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "config/campaign_config.hh"
#include "obs/run_report.hh"
#include "obs/span_trace.hh"
#include "obs/waveform_io.hh"

namespace
{

using namespace pdnspot;

constexpr const char *usageText =
    "usage: pdnspot_campaign <spec.json> [-o out.csv] [--summary]\n"
    "                        [--battery-wh <x>] [--threads <n>]\n"
    "                        [--no-memo] [--trace-dir <dir>]\n"
    "                        [--shard k/n] [--report out.json]\n"
    "                        [--trace-events out.trace.json]\n"
    "                        [--probe-out dir]\n"
    "                        [--progress] [--quiet]\n"
    "                        [--log-level info|warn|silent]\n"
    "                        [--dry-run] [--echo-spec]\n"
    "       pdnspot_campaign --list-traces [--seed <n>]\n"
    "       pdnspot_campaign --list-presets\n"
    "       pdnspot_campaign --version\n";

constexpr cli::ToolInfo tool{"pdnspot_campaign", usageText};

/** Parsed command line. */
struct Options
{
    std::string specPath;
    std::string outPath = "-";
    bool summary = false;
    double batteryWh = 50.0;
    std::optional<unsigned> threads;
    bool memo = true;
    std::string traceDir;
    size_t shardIndex = 1; ///< 1-based
    size_t shardCount = 1;
    std::string reportPath;
    std::string traceEventsPath;
    std::string probeOutDir;
    bool progress = false;
    std::optional<LogLevel> logLevel;
    bool dryRun = false;
    bool echoSpec = false;
    bool listTraces = false;
    bool listPresets = false;
    uint64_t listSeed = 42;
};

[[noreturn]] void
usageError(const std::string &message)
{
    cli::usageError(tool, message);
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    auto value = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            usageError(std::string(flag) + " needs a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            std::cout << usageText;
            std::exit(0);
        } else if (arg == "--version") {
            cli::printVersion(tool);
            std::exit(0);
        } else if (arg == "-o") {
            opts.outPath = value(i, "-o");
        } else if (arg == "--summary") {
            opts.summary = true;
        } else if (arg == "--battery-wh") {
            std::string v = value(i, "--battery-wh");
            // parseDouble rejects non-finite values ("nan"/"inf")
            // for every caller, so a positivity check suffices.
            std::optional<double> wh = cli::parseDouble(v);
            if (!wh || !(*wh > 0.0))
                usageError("--battery-wh must be a positive number, "
                           "got \"" +
                           v + "\"");
            opts.batteryWh = *wh;
        } else if (arg == "--threads") {
            opts.threads =
                cli::parseThreads(tool, value(i, "--threads"));
        } else if (arg == "--no-memo") {
            opts.memo = false;
        } else if (arg == "--trace-dir") {
            opts.traceDir = value(i, "--trace-dir");
            if (opts.traceDir.empty())
                usageError("--trace-dir needs a directory");
        } else if (arg == "--shard") {
            std::string v = value(i, "--shard");
            size_t slash = v.find('/');
            std::optional<size_t> k, n;
            if (slash != std::string::npos) {
                // from_chars on an unsigned type rejects "-4"
                // outright (std::stoul would wrap it around to a
                // huge shard count).
                k = cli::parseInt<size_t>(v.substr(0, slash));
                n = cli::parseInt<size_t>(v.substr(slash + 1));
            }
            if (!k || !n || *k < 1 || *n < 1 || *k > *n)
                usageError("--shard must be k/n with 1 <= k <= n, "
                           "got \"" +
                           v + "\"");
            opts.shardIndex = *k;
            opts.shardCount = *n;
        } else if (arg == "--report") {
            opts.reportPath = value(i, "--report");
            if (opts.reportPath.empty())
                usageError("--report needs a path");
        } else if (arg == "--trace-events") {
            opts.traceEventsPath = value(i, "--trace-events");
            if (opts.traceEventsPath.empty())
                usageError("--trace-events needs a path");
        } else if (arg == "--probe-out") {
            opts.probeOutDir = value(i, "--probe-out");
            if (opts.probeOutDir.empty())
                usageError("--probe-out needs a directory");
        } else if (arg == "--progress") {
            opts.progress = true;
        } else if (arg == "--quiet") {
            opts.logLevel = LogLevel::Warn;
        } else if (arg == "--log-level") {
            opts.logLevel =
                cli::parseLogLevel(tool, value(i, "--log-level"));
        } else if (arg == "--seed") {
            std::string v = value(i, "--seed");
            std::optional<uint64_t> seed =
                cli::parseInt<uint64_t>(v);
            if (!seed)
                usageError("--seed must be a non-negative integer, "
                           "got \"" +
                           v + "\"");
            opts.listSeed = *seed;
        } else if (arg == "--list-traces") {
            opts.listTraces = true;
        } else if (arg == "--list-presets") {
            opts.listPresets = true;
        } else if (arg == "--dry-run") {
            opts.dryRun = true;
        } else if (arg == "--echo-spec") {
            opts.echoSpec = true;
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            usageError("unknown option \"" + arg + "\"");
        } else if (opts.specPath.empty()) {
            opts.specPath = arg;
        } else {
            usageError("more than one spec file given");
        }
    }
    if (opts.specPath.empty() && !opts.listTraces &&
        !opts.listPresets)
        usageError("missing spec file");
    return opts;
}

/** --list-traces: the standard library corpus, spec-author view. */
void
printTraceLibrary(uint64_t seed)
{
    AsciiTable table(
        {"trace", "phases", "duration (ms)", "spec reference"});
    TraceLibrary library = standardCampaignTraces(seed);
    for (const PhaseTrace &t : library.traces()) {
        table.addRow({t.name(), std::to_string(t.phases().size()),
                      AsciiTable::num(
                          inMilliseconds(t.totalDuration()), 1),
                      strprintf("{\"library\": \"%s\", \"seed\": "
                                "%llu}",
                                t.name().c_str(),
                                static_cast<unsigned long long>(
                                    seed))});
    }
    table.print(std::cout);
    std::cout << "\nBattery profiles (usable as {\"profile\": "
                 "...}): ";
    bool first = true;
    for (const BatteryProfile &p : batteryLifeWorkloads()) {
        std::cout << (first ? "" : ", ") << p.name;
        first = false;
    }
    std::cout << "\n";
}

/** --list-presets: the named platform configurations. */
void
printPlatformPresets()
{
    AsciiTable table({"preset", "TDP (W)", "supply (V)",
                      "predictor hysteresis"});
    for (const PlatformConfig &cfg : allPlatformPresets()) {
        table.addRow({cfg.name, AsciiTable::num(inWatts(cfg.tdp), 0),
                      AsciiTable::num(
                          inVolts(cfg.pdnParams.supplyVoltage), 1),
                      AsciiTable::num(cfg.predictorHysteresis, 3)});
    }
    table.print(std::cout);
}

void
printSummary(const CampaignSummaryBuilder &builder, double batteryWh)
{
    BatteryModel battery(wattHours(batteryWh));
    AsciiTable table({"PDN", "cells", "supply (J)", "mean ETEE",
                      "switches",
                      strprintf("life @%gWh (h)", batteryWh)});
    for (const CampaignPdnSummary &s : builder.summaries(battery)) {
        table.addRow({pdnKindToString(s.pdn),
                      std::to_string(s.cells),
                      AsciiTable::num(inJoules(s.supplyEnergy), 2),
                      AsciiTable::percent(s.meanEtee(), 1),
                      std::to_string(s.modeSwitches),
                      AsciiTable::num(s.batteryLifeHours, 1)});
    }
    table.print(std::cerr);
}

/**
 * Streams CSV rows, feeds the summary builder, and exports probe
 * waveforms (--probe-out) in one pass. Cells arrive in canonical
 * order regardless of thread count, so the waveform files and the
 * accumulated counter events are deterministic.
 */
class CliSink : public CampaignSink
{
  public:
    CliSink(std::ostream &os, bool summarize, bool header,
            cli::ProgressMeter *progress, std::string probeDir)
        : _csv(os, header), _summarize(summarize),
          _progress(progress), _probeDir(std::move(probeDir))
    {}

    void
    consume(CampaignCellResult cell) override
    {
        if (_summarize)
            _builder.add(cell);
        if (cell.waveform && !_probeDir.empty())
            exportWaveform(*cell.waveform);
        _csv.consume(std::move(cell));
        if (_progress)
            _progress->tick(_csv.rows());
    }

    size_t rows() const { return _csv.rows(); }
    const CampaignSummaryBuilder &builder() const { return _builder; }

    /** Waveform CSV files written so far. */
    size_t waveforms() const { return _waveforms; }

    /** Perfetto counter events from every probed cell, in canonical
     * cell order. */
    const std::vector<JsonValue> &counterEvents() const
    {
        return _counterEvents;
    }

  private:
    void
    exportWaveform(const Waveform &waveform)
    {
        std::string path =
            _probeDir + "/" + waveform.cellName() + ".csv";
        std::ofstream file(path, std::ios::binary);
        if (!file)
            fatal(strprintf("cannot open waveform file \"%s\"",
                            path.c_str()));
        file << writeWaveformCsv(waveform);
        file.close();
        if (!file)
            fatal(strprintf("error writing \"%s\"", path.c_str()));
        for (JsonValue &event : waveformCounterEvents(waveform))
            _counterEvents.push_back(std::move(event));
        ++_waveforms;
    }

    CampaignCsvSink _csv;
    bool _summarize;
    cli::ProgressMeter *_progress;
    std::string _probeDir;
    size_t _waveforms = 0;
    std::vector<JsonValue> _counterEvents;
    CampaignSummaryBuilder _builder;
};

int
runCli(const Options &opts)
{
    if (opts.listTraces || opts.listPresets) {
        if (opts.listTraces)
            printTraceLibrary(opts.listSeed);
        if (opts.listPresets) {
            if (opts.listTraces)
                std::cout << "\n";
            printPlatformPresets();
        }
        return 0;
    }

    if (opts.echoSpec) {
        inform(strprintf("pdnspot_campaign %s (git %s)",
                         toolVersion().c_str(),
                         gitRevision().c_str()));
        std::cout << writeJson(parseJsonFile(opts.specPath));
        return 0;
    }

    CampaignSpec spec =
        loadCampaignSpecFile(opts.specPath, opts.traceDir);

    // Probes only run when an output surface asks for them: without
    // --probe-out the spec's probes are dropped here, so the engine
    // takes the unprobed fast path and existing invocations are
    // untouched byte for byte.
    if (opts.probeOutDir.empty()) {
        spec.probes.clear();
    } else if (spec.probes.empty()) {
        warn(strprintf("--probe-out given but \"%s\" binds no "
                       "probes; no waveforms will be captured",
                       opts.specPath.c_str()));
    }

    // Shard k/n covers cells [(k-1)*cells/n, k*cells/n): contiguous
    // in the canonical order, disjoint, and jointly covering.
    size_t cells = spec.cellCount();
    size_t firstCell =
        cells * (opts.shardIndex - 1) / opts.shardCount;
    size_t endCell = cells * opts.shardIndex / opts.shardCount;

    if (opts.dryRun) {
        std::cerr << "pdnspot_campaign: " << opts.specPath << ": "
                  << spec.traces.size() << " traces x "
                  << spec.platforms.size() << " platforms x "
                  << spec.pdns.size() << " PDNs = "
                  << spec.cellCount() << " cells ("
                  << toString(spec.mode) << " mode, tick "
                  << inMicroseconds(spec.tick) << " us)\n";
        for (const TraceSpec &t : spec.traces)
            std::cerr << "  trace \"" << t.name()
                      << "\": " << t.describe() << "\n";
        if (opts.shardCount > 1)
            std::cerr << "  shard " << opts.shardIndex << "/"
                      << opts.shardCount << ": cells [" << firstCell
                      << ", " << endCell << ")\n";
        return 0;
    }

    // Exporter outputs open before the campaign runs: an unwritable
    // path should fail in milliseconds, not after the study.
    std::ofstream reportFile;
    if (!opts.reportPath.empty()) {
        reportFile.open(opts.reportPath, std::ios::binary);
        if (!reportFile)
            fatal(strprintf("cannot open report file \"%s\"",
                            opts.reportPath.c_str()));
    }
    std::ofstream traceEventsFile;
    if (!opts.traceEventsPath.empty()) {
        traceEventsFile.open(opts.traceEventsPath,
                             std::ios::binary);
        if (!traceEventsFile)
            fatal(strprintf("cannot open trace-events file \"%s\"",
                            opts.traceEventsPath.c_str()));
    }
    std::ofstream countersFile;
    if (!opts.probeOutDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts.probeOutDir, ec);
        if (ec)
            fatal(strprintf("cannot create probe directory \"%s\": "
                            "%s",
                            opts.probeOutDir.c_str(),
                            ec.message().c_str()));
        std::string countersPath =
            opts.probeOutDir + "/counters.json";
        countersFile.open(countersPath, std::ios::binary);
        if (!countersFile)
            fatal(strprintf("cannot open counter file \"%s\"",
                            countersPath.c_str()));
    }

    std::optional<ParallelRunner> ownRunner;
    if (opts.threads)
        ownRunner.emplace(*opts.threads);
    const ParallelRunner &runner =
        ownRunner ? *ownRunner : ParallelRunner::global();
    CampaignEngine engine(runner);
    engine.memoize(opts.memo);

    std::ofstream file;
    if (opts.outPath != "-") {
        file.open(opts.outPath, std::ios::binary);
        if (!file)
            fatal(strprintf("cannot open output file \"%s\"",
                            opts.outPath.c_str()));
    }
    std::ostream &out = opts.outPath != "-" ? file : std::cout;

    // Observability installs: metrics whenever a report or the
    // summary's percentile lines are wanted, spans whenever trace
    // events are. All are pure observers — the campaign CSV stays
    // byte-identical with or without them.
    const bool wantReport = !opts.reportPath.empty();
    std::optional<MetricsRegistry> registry;
    std::optional<MetricsInstallation> metricsInstall;
    if (wantReport || opts.summary) {
        registry.emplace();
        metricsInstall.emplace(*registry);
    }
    std::optional<SpanRecorder> spans;
    std::optional<SpanInstallation> spanInstall;
    if (!opts.traceEventsPath.empty()) {
        spans.emplace();
        spanInstall.emplace(*spans);
    }

    cli::ProgressMeter progress(tool, "cells", opts.progress,
                                endCell - firstCell);
    CliSink sink(out, opts.summary || wantReport,
                 opts.shardIndex == 1,
                 opts.progress ? &progress : nullptr,
                 opts.probeOutDir);
    CampaignRunStats stats;
    auto runStart = std::chrono::steady_clock::now();
    engine.run(spec, sink, firstCell, endCell, &stats);
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - runStart;
    metricsInstall.reset(); // quiesced: snapshots are final now

    if (opts.outPath != "-") {
        file.close();
        if (!file)
            fatal(strprintf("error writing \"%s\"",
                            opts.outPath.c_str()));
        inform(strprintf("wrote %zu rows to %s", sink.rows(),
                         opts.outPath.c_str()));
    }

    if (!opts.probeOutDir.empty()) {
        countersFile << writeJson(
            counterTrackDocument(sink.counterEvents()));
        countersFile.close();
        if (!countersFile)
            fatal(strprintf("error writing \"%s/counters.json\"",
                            opts.probeOutDir.c_str()));
        inform(strprintf("wrote %zu waveforms to %s",
                         sink.waveforms(),
                         opts.probeOutDir.c_str()));
    }

    if (spans) {
        spanInstall.reset(); // quiesce before serializing
        TraceEventExport stamp;
        stamp.shardIndex = opts.shardIndex;
        stamp.shardCount = opts.shardCount;
        stamp.extraEvents = sink.counterEvents();
        traceEventsFile << writeJson(spans->traceEventsJson(stamp));
        traceEventsFile.close();
        if (!traceEventsFile)
            fatal(strprintf("error writing \"%s\"",
                            opts.traceEventsPath.c_str()));
        inform(strprintf(
            "wrote %zu trace events to %s (%llu spans dropped)",
            spans->eventCount(), opts.traceEventsPath.c_str(),
            static_cast<unsigned long long>(
                spans->droppedSpans())));
    }

    if (wantReport) {
        RunReportInputs rin;
        rin.specPath = opts.specPath;
        rin.specText = cli::readFileBytes(opts.specPath);
        rin.specEcho = parseJsonFile(opts.specPath);
        rin.spec = &spec;
        rin.threads = runner.threadCount();
        rin.shardIndex = opts.shardIndex;
        rin.shardCount = opts.shardCount;
        rin.firstCell = firstCell;
        rin.endCell = endCell;
        rin.memoize = opts.memo;
        rin.wallSeconds = wall.count();
        rin.rows = sink.rows();
        rin.summaries = sink.builder().summaries(
            BatteryModel(wattHours(opts.batteryWh)));
        rin.batteryWh = opts.batteryWh;
        rin.metrics = &*registry;
        reportFile << writeJson(buildRunReport(rin));
        reportFile.close();
        if (!reportFile)
            fatal(strprintf("error writing \"%s\"",
                            opts.reportPath.c_str()));
        inform(strprintf("wrote run report to %s",
                         opts.reportPath.c_str()));
    }

    if (opts.summary) {
        printSummary(sink.builder(), opts.batteryWh);
        for (const MetricSnapshot &m : registry->snapshot()) {
            if (m.kind != MetricKind::Histogram || m.count == 0)
                continue;
            std::cerr << strprintf(
                "%s: p50 %.3g, p95 %.3g, p99 %.3g, max %.3g over "
                "%llu samples\n",
                m.name.c_str(), histogramQuantile(m, 0.50),
                histogramQuantile(m, 0.95),
                histogramQuantile(m, 0.99), m.max,
                static_cast<unsigned long long>(m.count));
        }
        if (opts.memo)
            std::cerr << strprintf(
                "memo: %llu probes, %llu hits, %llu misses "
                "(%.1f%% hit rate) over %llu phases\n",
                static_cast<unsigned long long>(stats.memoProbes),
                static_cast<unsigned long long>(stats.memoHits),
                static_cast<unsigned long long>(stats.memoMisses()),
                stats.memoHitRate() * 100.0,
                static_cast<unsigned long long>(stats.phases));
        else
            std::cerr << "memo: disabled (--no-memo)\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);
    if (opts.logLevel)
        setLogThreshold(*opts.logLevel);
    try {
        return runCli(opts);
    } catch (const ConfigError &e) {
        std::cerr << "pdnspot_campaign: " << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        // ModelError (an internal invariant, i.e. a bug) or OS-level
        // failures: report and exit instead of std::terminate.
        std::cerr << "pdnspot_campaign: internal error: " << e.what()
                  << "\n";
        return 3;
    }
}
