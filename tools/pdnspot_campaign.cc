/**
 * @file
 * pdnspot_campaign: run a batch-simulation campaign from a spec file.
 *
 * The file-in/CSV-out driver for the campaign subsystem: loads a
 * JSON campaign spec (src/config/campaign_config.hh), executes the
 * trace × platform × PDN cross-product over the thread pool, and
 * streams the result rows to a CSV file as cells complete — the CSV
 * is byte-identical to CampaignResult::writeCsv over the same
 * campaign at any thread count, so non-C++ tooling can script
 * studies and diff outputs exactly.
 *
 * Usage: pdnspot_campaign <spec.json> [options]
 *   -o <path>        write the campaign CSV to <path> ("-" = stdout,
 *                    the default)
 *   --summary        print the per-PDN summary table and the memo
 *                    probe/hit/miss counters to stderr
 *   --battery-wh <x> battery capacity for the summary (default 50)
 *   --threads <n>    thread count (overrides PDNSPOT_THREADS)
 *   --no-memo        disable the per-worker evaluation memo
 *   --trace-dir <d>  resolve relative "file" trace paths against <d>
 *                    (default: the spec file's directory)
 *   --shard k/n      run only shard k of n (1-based): a contiguous
 *                    range of the campaign's canonical cell order.
 *                    Shard 1 carries the CSV header; concatenating
 *                    the n shard CSVs in order is byte-identical to
 *                    the unsharded run
 *   --dry-run        load + validate the spec, report the campaign
 *                    shape and per-trace provenance (including any
 *                    transform chains), and exit without simulating
 *   --echo-spec      print the parsed spec back as normalized JSON
 *                    and exit
 *   --list-traces    print the standard trace library (with --seed)
 *   --list-presets   print the named PlatformConfig presets
 *   --seed <n>       library seed for --list-traces (default 42)
 */

#include <charconv>
#include <cmath>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "campaign/campaign_engine.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "config/campaign_config.hh"

namespace
{

using namespace pdnspot;

constexpr const char *usageText =
    "usage: pdnspot_campaign <spec.json> [-o out.csv] [--summary]\n"
    "                        [--battery-wh <x>] [--threads <n>]\n"
    "                        [--no-memo] [--trace-dir <dir>]\n"
    "                        [--shard k/n] [--dry-run] [--echo-spec]\n"
    "       pdnspot_campaign --list-traces [--seed <n>]\n"
    "       pdnspot_campaign --list-presets\n";

/** Parsed command line. */
struct Options
{
    std::string specPath;
    std::string outPath = "-";
    bool summary = false;
    double batteryWh = 50.0;
    std::optional<unsigned> threads;
    bool memo = true;
    std::string traceDir;
    size_t shardIndex = 1; ///< 1-based
    size_t shardCount = 1;
    bool dryRun = false;
    bool echoSpec = false;
    bool listTraces = false;
    bool listPresets = false;
    uint64_t listSeed = 42;
};

[[noreturn]] void
usageError(const std::string &message)
{
    std::cerr << "pdnspot_campaign: " << message << "\n"
              << usageText;
    std::exit(2);
}

/**
 * Locale-independent strict number parses (the src/common/csv.cc:31
 * policy). std::stod honors the global C locale, so under a
 * comma-decimal locale "3.5" stops at the dot and "3,5" parses as
 * 3.5 — the same command line means different campaigns on different
 * machines. std::from_chars always uses the C grammar; requiring the
 * full string also rejects trailing junk that std::stod's pos check
 * was emulating.
 */
std::optional<double>
parseDouble(const std::string &v)
{
    double out = 0.0;
    const char *end = v.data() + v.size();
    auto [ptr, ec] = std::from_chars(v.data(), end, out);
    if (ec != std::errc() || ptr != end)
        return std::nullopt;
    return out;
}

template <typename Int>
std::optional<Int>
parseInt(const std::string &v)
{
    Int out = 0;
    const char *end = v.data() + v.size();
    auto [ptr, ec] = std::from_chars(v.data(), end, out);
    if (ec != std::errc() || ptr != end)
        return std::nullopt;
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    auto value = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            usageError(std::string(flag) + " needs a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            std::cout << usageText;
            std::exit(0);
        } else if (arg == "-o") {
            opts.outPath = value(i, "-o");
        } else if (arg == "--summary") {
            opts.summary = true;
        } else if (arg == "--battery-wh") {
            std::string v = value(i, "--battery-wh");
            std::optional<double> wh = parseDouble(v);
            // from_chars accepts "nan"/"inf"; neither is a battery.
            if (!wh || !std::isfinite(*wh) || !(*wh > 0.0))
                usageError("--battery-wh must be a positive number, "
                           "got \"" +
                           v + "\"");
            opts.batteryWh = *wh;
        } else if (arg == "--threads") {
            std::string v = value(i, "--threads");
            std::optional<long> parsed = parseInt<long>(v);
            long n = parsed.value_or(0);
            if (!parsed || n < 1)
                usageError("--threads must be a positive integer, "
                           "got \"" +
                           v + "\"");
            if (n > static_cast<long>(
                        ParallelRunner::maxThreadCount)) {
                std::cerr << "pdnspot_campaign: --threads " << n
                          << " capped at "
                          << ParallelRunner::maxThreadCount << "\n";
                n = ParallelRunner::maxThreadCount;
            }
            opts.threads = static_cast<unsigned>(n);
        } else if (arg == "--no-memo") {
            opts.memo = false;
        } else if (arg == "--trace-dir") {
            opts.traceDir = value(i, "--trace-dir");
            if (opts.traceDir.empty())
                usageError("--trace-dir needs a directory");
        } else if (arg == "--shard") {
            std::string v = value(i, "--shard");
            size_t slash = v.find('/');
            std::optional<size_t> k, n;
            if (slash != std::string::npos) {
                // from_chars on an unsigned type rejects "-4"
                // outright (std::stoul would wrap it around to a
                // huge shard count).
                k = parseInt<size_t>(v.substr(0, slash));
                n = parseInt<size_t>(v.substr(slash + 1));
            }
            if (!k || !n || *k < 1 || *n < 1 || *k > *n)
                usageError("--shard must be k/n with 1 <= k <= n, "
                           "got \"" +
                           v + "\"");
            opts.shardIndex = *k;
            opts.shardCount = *n;
        } else if (arg == "--seed") {
            std::string v = value(i, "--seed");
            std::optional<uint64_t> seed = parseInt<uint64_t>(v);
            if (!seed)
                usageError("--seed must be a non-negative integer, "
                           "got \"" +
                           v + "\"");
            opts.listSeed = *seed;
        } else if (arg == "--list-traces") {
            opts.listTraces = true;
        } else if (arg == "--list-presets") {
            opts.listPresets = true;
        } else if (arg == "--dry-run") {
            opts.dryRun = true;
        } else if (arg == "--echo-spec") {
            opts.echoSpec = true;
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            usageError("unknown option \"" + arg + "\"");
        } else if (opts.specPath.empty()) {
            opts.specPath = arg;
        } else {
            usageError("more than one spec file given");
        }
    }
    if (opts.specPath.empty() && !opts.listTraces &&
        !opts.listPresets)
        usageError("missing spec file");
    return opts;
}

/** --list-traces: the standard library corpus, spec-author view. */
void
printTraceLibrary(uint64_t seed)
{
    AsciiTable table(
        {"trace", "phases", "duration (ms)", "spec reference"});
    TraceLibrary library = standardCampaignTraces(seed);
    for (const PhaseTrace &t : library.traces()) {
        table.addRow({t.name(), std::to_string(t.phases().size()),
                      AsciiTable::num(
                          inMilliseconds(t.totalDuration()), 1),
                      strprintf("{\"library\": \"%s\", \"seed\": "
                                "%llu}",
                                t.name().c_str(),
                                static_cast<unsigned long long>(
                                    seed))});
    }
    table.print(std::cout);
    std::cout << "\nBattery profiles (usable as {\"profile\": "
                 "...}): ";
    bool first = true;
    for (const BatteryProfile &p : batteryLifeWorkloads()) {
        std::cout << (first ? "" : ", ") << p.name;
        first = false;
    }
    std::cout << "\n";
}

/** --list-presets: the named platform configurations. */
void
printPlatformPresets()
{
    AsciiTable table({"preset", "TDP (W)", "supply (V)",
                      "predictor hysteresis"});
    for (const PlatformConfig &cfg : allPlatformPresets()) {
        table.addRow({cfg.name, AsciiTable::num(inWatts(cfg.tdp), 0),
                      AsciiTable::num(
                          inVolts(cfg.pdnParams.supplyVoltage), 1),
                      AsciiTable::num(cfg.predictorHysteresis, 3)});
    }
    table.print(std::cout);
}

void
printSummary(const CampaignSummaryBuilder &builder, double batteryWh)
{
    BatteryModel battery(wattHours(batteryWh));
    AsciiTable table({"PDN", "cells", "supply (J)", "mean ETEE",
                      "switches",
                      strprintf("life @%gWh (h)", batteryWh)});
    for (const CampaignPdnSummary &s : builder.summaries(battery)) {
        table.addRow({pdnKindToString(s.pdn),
                      std::to_string(s.cells),
                      AsciiTable::num(inJoules(s.supplyEnergy), 2),
                      AsciiTable::percent(s.meanEtee(), 1),
                      std::to_string(s.modeSwitches),
                      AsciiTable::num(s.batteryLifeHours, 1)});
    }
    table.print(std::cerr);
}

/** Streams CSV rows and feeds the summary builder in one pass. */
class CliSink : public CampaignSink
{
  public:
    CliSink(std::ostream &os, bool summarize, bool header)
        : _csv(os, header), _summarize(summarize)
    {}

    void
    consume(CampaignCellResult cell) override
    {
        if (_summarize)
            _builder.add(cell);
        _csv.consume(std::move(cell));
    }

    size_t rows() const { return _csv.rows(); }
    const CampaignSummaryBuilder &builder() const { return _builder; }

  private:
    CampaignCsvSink _csv;
    bool _summarize;
    CampaignSummaryBuilder _builder;
};

int
runCli(const Options &opts)
{
    if (opts.listTraces || opts.listPresets) {
        if (opts.listTraces)
            printTraceLibrary(opts.listSeed);
        if (opts.listPresets) {
            if (opts.listTraces)
                std::cout << "\n";
            printPlatformPresets();
        }
        return 0;
    }

    if (opts.echoSpec) {
        std::cout << writeJson(parseJsonFile(opts.specPath));
        return 0;
    }

    CampaignSpec spec =
        loadCampaignSpecFile(opts.specPath, opts.traceDir);

    // Shard k/n covers cells [(k-1)*cells/n, k*cells/n): contiguous
    // in the canonical order, disjoint, and jointly covering.
    size_t cells = spec.cellCount();
    size_t firstCell =
        cells * (opts.shardIndex - 1) / opts.shardCount;
    size_t endCell = cells * opts.shardIndex / opts.shardCount;

    if (opts.dryRun) {
        std::cerr << "pdnspot_campaign: " << opts.specPath << ": "
                  << spec.traces.size() << " traces x "
                  << spec.platforms.size() << " platforms x "
                  << spec.pdns.size() << " PDNs = "
                  << spec.cellCount() << " cells ("
                  << toString(spec.mode) << " mode, tick "
                  << inMicroseconds(spec.tick) << " us)\n";
        for (const TraceSpec &t : spec.traces)
            std::cerr << "  trace \"" << t.name()
                      << "\": " << t.describe() << "\n";
        if (opts.shardCount > 1)
            std::cerr << "  shard " << opts.shardIndex << "/"
                      << opts.shardCount << ": cells [" << firstCell
                      << ", " << endCell << ")\n";
        return 0;
    }

    std::optional<ParallelRunner> ownRunner;
    if (opts.threads)
        ownRunner.emplace(*opts.threads);
    CampaignEngine engine(ownRunner ? *ownRunner
                                    : ParallelRunner::global());
    engine.memoize(opts.memo);

    std::ofstream file;
    if (opts.outPath != "-") {
        file.open(opts.outPath, std::ios::binary);
        if (!file)
            fatal(strprintf("cannot open output file \"%s\"",
                            opts.outPath.c_str()));
    }
    std::ostream &out = opts.outPath != "-" ? file : std::cout;

    CliSink sink(out, opts.summary, opts.shardIndex == 1);
    CampaignRunStats stats;
    engine.run(spec, sink, firstCell, endCell, &stats);

    if (opts.outPath != "-") {
        file.close();
        if (!file)
            fatal(strprintf("error writing \"%s\"",
                            opts.outPath.c_str()));
        std::cerr << "pdnspot_campaign: wrote " << sink.rows()
                  << " rows to " << opts.outPath << "\n";
    }
    if (opts.summary) {
        printSummary(sink.builder(), opts.batteryWh);
        if (opts.memo)
            std::cerr << strprintf(
                "memo: %llu probes, %llu hits, %llu misses "
                "(%.1f%% hit rate) over %llu phases\n",
                static_cast<unsigned long long>(stats.memoProbes),
                static_cast<unsigned long long>(stats.memoHits),
                static_cast<unsigned long long>(stats.memoMisses()),
                stats.memoHitRate() * 100.0,
                static_cast<unsigned long long>(stats.phases));
        else
            std::cerr << "memo: disabled (--no-memo)\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);
    try {
        return runCli(opts);
    } catch (const ConfigError &e) {
        std::cerr << "pdnspot_campaign: " << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        // ModelError (an internal invariant, i.e. a bug) or OS-level
        // failures: report and exit instead of std::terminate.
        std::cerr << "pdnspot_campaign: internal error: " << e.what()
                  << "\n";
        return 3;
    }
}
