#include "cli_common.hh"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <unistd.h>

#include "common/parallel.hh"
#include "obs/run_report.hh"

namespace pdnspot
{
namespace cli
{

void
usageError(const ToolInfo &tool, const std::string &message)
{
    std::cerr << tool.name << ": " << message << "\n" << tool.usage;
    std::exit(2);
}

void
printVersion(const ToolInfo &tool)
{
    std::cout << tool.name << " " << toolVersion() << " (git "
              << gitRevision() << ")\n";
}

std::optional<double>
parseDouble(const std::string &v)
{
    double out = 0.0;
    const char *end = v.data() + v.size();
    auto [ptr, ec] = std::from_chars(v.data(), end, out);
    if (ec != std::errc() || ptr != end)
        return std::nullopt;
    return out;
}

unsigned
parseThreads(const ToolInfo &tool, const std::string &v)
{
    std::optional<long> parsed = parseInt<long>(v);
    long n = parsed.value_or(0);
    if (!parsed || n < 1)
        usageError(tool, "--threads must be a positive integer, "
                         "got \"" +
                             v + "\"");
    if (n > static_cast<long>(ParallelRunner::maxThreadCount)) {
        std::cerr << tool.name << ": --threads " << n
                  << " capped at " << ParallelRunner::maxThreadCount
                  << "\n";
        n = ParallelRunner::maxThreadCount;
    }
    return static_cast<unsigned>(n);
}

LogLevel
parseLogLevel(const ToolInfo &tool, const std::string &v)
{
    if (v != "info" && v != "warn" && v != "silent")
        usageError(tool, "--log-level must be info, warn or silent, "
                         "got \"" +
                             v + "\"");
    return logLevelFromString(v);
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal(strprintf("cannot read \"%s\"", path.c_str()));
    std::ostringstream out;
    out << in.rdbuf();
    return std::move(out).str();
}

ProgressMeter::ProgressMeter(const ToolInfo &tool, const char *unit,
                             bool enabled, size_t total)
    : _name(tool.name), _unit(unit),
      _enabled(enabled && isatty(fileno(stderr)) == 1),
      _total(total), _start(std::chrono::steady_clock::now()),
      _lastPrint(_start)
{}

ProgressMeter::~ProgressMeter()
{
    if (_printed)
        std::cerr << "\n";
}

void
ProgressMeter::tick(size_t done)
{
    if (!_enabled)
        return;
    auto now = std::chrono::steady_clock::now();
    if (done < _total &&
        now - _lastPrint < std::chrono::milliseconds(500))
        return;
    _lastPrint = now;
    std::chrono::duration<double> elapsed = now - _start;
    double rate =
        elapsed.count() > 0.0
            ? static_cast<double>(done) / elapsed.count()
            : 0.0;
    double eta = rate > 0.0
                     ? static_cast<double>(_total - done) / rate
                     : 0.0;
    // \r + trailing pad rewrites the line in place.
    std::cerr << strprintf(
        "\r%s: %zu/%zu %s (%.0f%%), %.0f %s/s, ETA %.0fs   ", _name,
        done, _total, _unit,
        _total ? 100.0 * static_cast<double>(done) /
                     static_cast<double>(_total)
               : 100.0,
        rate, _unit, eta);
    _printed = true;
}

} // namespace cli
} // namespace pdnspot
