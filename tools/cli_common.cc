#include "cli_common.hh"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <unistd.h>

#include "common/parallel.hh"
#include "obs/run_report.hh"

namespace pdnspot
{
namespace cli
{

void
usageError(const ToolInfo &tool, const std::string &message)
{
    std::cerr << tool.name << ": " << message << "\n" << tool.usage;
    std::exit(2);
}

void
printVersion(const ToolInfo &tool)
{
    std::cout << tool.name << " " << toolVersion() << " (git "
              << gitRevision() << ")\n";
}

std::optional<double>
parseDouble(const std::string &v)
{
    double out = 0.0;
    const char *end = v.data() + v.size();
    auto [ptr, ec] = std::from_chars(v.data(), end, out);
    if (ec != std::errc() || ptr != end)
        return std::nullopt;
    // std::from_chars accepts "inf"/"nan" (any case). No CLI number
    // here means an infinity — "--battery-wh nan" would sail through
    // a `<= 0` positivity check (NaN comparisons are all false) and
    // "inf" passes it outright, poisoning every downstream summary.
    // Rejecting non-finite values here covers every caller at once.
    if (!std::isfinite(out))
        return std::nullopt;
    return out;
}

unsigned
parseThreads(const ToolInfo &tool, const std::string &v)
{
    std::optional<long> parsed = parseInt<long>(v);
    long n = parsed.value_or(0);
    if (!parsed || n < 1)
        usageError(tool, "--threads must be a positive integer, "
                         "got \"" +
                             v + "\"");
    if (n > static_cast<long>(ParallelRunner::maxThreadCount)) {
        std::cerr << tool.name << ": --threads " << n
                  << " capped at " << ParallelRunner::maxThreadCount
                  << "\n";
        n = ParallelRunner::maxThreadCount;
    }
    return static_cast<unsigned>(n);
}

LogLevel
parseLogLevel(const ToolInfo &tool, const std::string &v)
{
    if (v != "info" && v != "warn" && v != "silent")
        usageError(tool, "--log-level must be info, warn or silent, "
                         "got \"" +
                             v + "\"");
    return logLevelFromString(v);
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal(strprintf("cannot read \"%s\"", path.c_str()));
    std::ostringstream out;
    out << in.rdbuf();
    return std::move(out).str();
}

ProgressMeter::ProgressMeter(const ToolInfo &tool, const char *unit,
                             bool enabled, size_t total)
    : _name(tool.name), _unit(unit),
      _enabled(enabled && isatty(fileno(stderr)) == 1),
      _total(total), _start(std::chrono::steady_clock::now()),
      _lastPrint(_start)
{}

ProgressMeter::~ProgressMeter()
{
    if (_printed)
        std::cerr << "\n";
}

std::string
formatProgressLine(const char *name, const char *unit, size_t done,
                   size_t total, double elapsedSeconds)
{
    double rate = elapsedSeconds > 0.0
                      ? static_cast<double>(done) / elapsedSeconds
                      : 0.0;
    // A zero rate (nothing finished yet, or a zero elapsed clock)
    // used to print "ETA 0s" — the one message a stalled shard must
    // never show. "ETA --" says "no estimate", which is the truth.
    std::string eta =
        rate > 0.0 && total > 0
            ? strprintf("%.0fs",
                        static_cast<double>(total - done) / rate)
            : "--";
    // An unknown total (0) gets no "k/0 (100%)" lie: just the count.
    std::string progress =
        total > 0
            ? strprintf("%zu/%zu %s (%.0f%%)", done, total, unit,
                        100.0 * static_cast<double>(done) /
                            static_cast<double>(total))
            : strprintf("%zu %s", done, unit);
    return strprintf("%s: %s, %.0f %s/s, ETA %s", name,
                     progress.c_str(), rate, unit, eta.c_str());
}

void
ProgressMeter::tick(size_t done)
{
    if (!_enabled)
        return;
    auto now = std::chrono::steady_clock::now();
    if (done < _total &&
        now - _lastPrint < std::chrono::milliseconds(500))
        return;
    _lastPrint = now;
    std::chrono::duration<double> elapsed = now - _start;
    // \r + trailing pad rewrites the line in place.
    std::cerr << "\r"
              << formatProgressLine(_name, _unit, done, _total,
                                    elapsed.count())
              << "   ";
    _printed = true;
}

} // namespace cli
} // namespace pdnspot
