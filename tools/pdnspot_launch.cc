/**
 * @file
 * pdnspot_launch: fan a campaign across shard subprocesses.
 *
 * The fleet layer above `pdnspot_campaign --shard k/n`: reads a
 * campaign spec, spawns the n shards as local pdnspot_campaign
 * subprocesses under a concurrency cap, health-checks them (exit
 * codes, per-attempt timeouts), retries failed or hung shards on a
 * bounded, seeded-deterministic backoff schedule, and concatenates
 * the shard CSVs in shard order — byte-identical to the unsharded
 * run, which check.sh enforces. With --archive, each shard's
 * provenance-stamped run report plus its CSV payload are ingested
 * into a ResultArchive (src/store/result_archive.hh) so the study
 * is queryable (pdnspot_query) the moment it lands.
 *
 * Usage: pdnspot_launch <spec.json> [options]
 *   -n, --shards <n>  shard count (default: the spec's
 *                     "launch.shards", else 4)
 *   -o <path>         write the concatenated CSV to <path>
 *                     ("-" = stdout, the default)
 *   --jobs <j>        concurrent shard processes (default:
 *                     "launch.jobs", else min(n, hardware))
 *   --timeout <s>     per-attempt wall-clock limit; a shard past it
 *                     is killed and retried (default:
 *                     "launch.timeout_s", 0 = none)
 *   --retries <r>     retries per shard after the first attempt
 *                     (default: "launch.retries", else 2)
 *   --backoff-ms <ms> retry backoff base; attempt a waits
 *                     base * 2^(a-1), jittered deterministically
 *                     from --seed (default: "launch.backoff_ms",
 *                     else 200; 0 = immediate)
 *   --seed <n>        backoff jitter seed (default: "launch.seed")
 *   --campaign-bin <path>
 *                     pdnspot_campaign binary (default: next to
 *                     this binary)
 *   --work-dir <dir>  keep shard CSVs/logs/reports here (default: a
 *                     temp dir, removed when the launch succeeds)
 *   --keep-work       keep the temp work dir even on success
 *   --threads <n>     per-shard --threads passed through
 *   --no-memo         pass --no-memo through to every shard
 *   --trace-dir <d>   pass --trace-dir through to every shard
 *   --archive <dir>   ingest every shard's run report + CSV into
 *                     the result archive at <dir>
 *   --report-dir <d>  keep the per-shard pdnspot-report-1 files in
 *                     <d> (shard_<k>.report.json)
 *   --progress        shards-done heartbeat on stderr (TTY only)
 *   --quiet / --log-level <l> / --version / --dry-run
 *
 * Failure injection (tests + check.sh only): the environment
 * variable PDNSPOT_LAUNCH_INJECT=<mode>:<shard>:<times> makes the
 * launcher sabotage the first <times> attempts of shard <shard> —
 * mode "fail" launches the attempt against a nonexistent spec so
 * the child exits 1 immediately; mode "kill" makes the spawned
 * child SIGKILL itself before exec (a parent-sent kill can race a
 * fast shard to completion), exercising the died-by-signal retry
 * path. The retry machinery treats both exactly like real faults.
 *
 * Exit codes follow the campaign tool: 0 success, 1 runtime failure
 * (including a shard exhausting its retries — the message names the
 * shard and its log), 2 usage, 3 internal error.
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "cli_common.hh"
#include "common/logging.hh"
#include "common/noise.hh"
#include "config/campaign_config.hh"
#include "config/launch_config.hh"
#include "obs/run_report.hh"
#include "store/result_archive.hh"

namespace
{

using namespace pdnspot;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr const char *usageText =
    "usage: pdnspot_launch <spec.json> [-n <shards>] [-o out.csv]\n"
    "                      [--jobs <j>] [--timeout <s>]\n"
    "                      [--retries <r>] [--backoff-ms <ms>]\n"
    "                      [--seed <n>] [--campaign-bin <path>]\n"
    "                      [--work-dir <dir>] [--keep-work]\n"
    "                      [--threads <n>] [--no-memo]\n"
    "                      [--trace-dir <dir>] [--archive <dir>]\n"
    "                      [--report-dir <dir>] [--progress]\n"
    "                      [--quiet]\n"
    "                      [--log-level info|warn|silent]\n"
    "                      [--dry-run]\n"
    "       pdnspot_launch --version\n";

constexpr cli::ToolInfo tool{"pdnspot_launch", usageText};

[[noreturn]] void
usageError(const std::string &message)
{
    cli::usageError(tool, message);
}

/** Parsed command line (spec-file launch knobs already folded in). */
struct Options
{
    std::string specPath;
    std::string outPath = "-";
    std::optional<size_t> shards;
    std::optional<size_t> jobs;
    std::optional<double> timeoutS;
    std::optional<unsigned> retries;
    std::optional<double> backoffMs;
    std::optional<uint64_t> seed;
    std::string campaignBin;
    std::string workDir;
    bool keepWork = false;
    std::optional<unsigned> threads;
    bool memo = true;
    std::string traceDir;
    std::string archiveDir;
    std::string reportDir;
    bool progress = false;
    std::optional<LogLevel> logLevel;
    bool dryRun = false;
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    auto value = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            usageError(std::string(flag) + " needs a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            std::cout << usageText;
            std::exit(0);
        } else if (arg == "--version") {
            cli::printVersion(tool);
            std::exit(0);
        } else if (arg == "-n" || arg == "--shards") {
            std::string v = value(i, arg.c_str());
            std::optional<size_t> n = cli::parseInt<size_t>(v);
            if (!n || *n < 1)
                usageError("--shards must be a positive integer, "
                           "got \"" +
                           v + "\"");
            opts.shards = *n;
        } else if (arg == "-o") {
            opts.outPath = value(i, "-o");
        } else if (arg == "--jobs") {
            std::string v = value(i, "--jobs");
            std::optional<size_t> j = cli::parseInt<size_t>(v);
            if (!j || *j < 1)
                usageError("--jobs must be a positive integer, got "
                           "\"" +
                           v + "\"");
            opts.jobs = *j;
        } else if (arg == "--timeout") {
            std::string v = value(i, "--timeout");
            std::optional<double> s = cli::parseDouble(v);
            if (!s || !(*s >= 0.0))
                usageError("--timeout must be a non-negative "
                           "number of seconds, got \"" +
                           v + "\"");
            opts.timeoutS = *s;
        } else if (arg == "--retries") {
            std::string v = value(i, "--retries");
            std::optional<unsigned> r = cli::parseInt<unsigned>(v);
            if (!r)
                usageError("--retries must be a non-negative "
                           "integer, got \"" +
                           v + "\"");
            opts.retries = *r;
        } else if (arg == "--backoff-ms") {
            std::string v = value(i, "--backoff-ms");
            std::optional<double> ms = cli::parseDouble(v);
            if (!ms || !(*ms >= 0.0))
                usageError("--backoff-ms must be a non-negative "
                           "number, got \"" +
                           v + "\"");
            opts.backoffMs = *ms;
        } else if (arg == "--seed") {
            std::string v = value(i, "--seed");
            std::optional<uint64_t> seed =
                cli::parseInt<uint64_t>(v);
            if (!seed)
                usageError("--seed must be a non-negative integer, "
                           "got \"" +
                           v + "\"");
            opts.seed = *seed;
        } else if (arg == "--campaign-bin") {
            opts.campaignBin = value(i, "--campaign-bin");
            if (opts.campaignBin.empty())
                usageError("--campaign-bin needs a path");
        } else if (arg == "--work-dir") {
            opts.workDir = value(i, "--work-dir");
            if (opts.workDir.empty())
                usageError("--work-dir needs a directory");
        } else if (arg == "--keep-work") {
            opts.keepWork = true;
        } else if (arg == "--threads") {
            opts.threads =
                cli::parseThreads(tool, value(i, "--threads"));
        } else if (arg == "--no-memo") {
            opts.memo = false;
        } else if (arg == "--trace-dir") {
            opts.traceDir = value(i, "--trace-dir");
            if (opts.traceDir.empty())
                usageError("--trace-dir needs a directory");
        } else if (arg == "--archive") {
            opts.archiveDir = value(i, "--archive");
            if (opts.archiveDir.empty())
                usageError("--archive needs a directory");
        } else if (arg == "--report-dir") {
            opts.reportDir = value(i, "--report-dir");
            if (opts.reportDir.empty())
                usageError("--report-dir needs a directory");
        } else if (arg == "--progress") {
            opts.progress = true;
        } else if (arg == "--quiet") {
            opts.logLevel = LogLevel::Warn;
        } else if (arg == "--log-level") {
            opts.logLevel =
                cli::parseLogLevel(tool, value(i, "--log-level"));
        } else if (arg == "--dry-run") {
            opts.dryRun = true;
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            usageError("unknown option \"" + arg + "\"");
        } else if (opts.specPath.empty()) {
            opts.specPath = arg;
        } else {
            usageError("more than one spec file given");
        }
    }
    if (opts.specPath.empty())
        usageError("missing spec file");
    return opts;
}

/** The test-only fault hook (PDNSPOT_LAUNCH_INJECT). */
struct Injection
{
    enum class Mode
    {
        None,
        Fail, ///< launch the attempt against a nonexistent spec
        Kill, ///< SIGKILL the freshly spawned child
    };
    Mode mode = Mode::None;
    size_t shard = 0;
    unsigned remaining = 0;

    static Injection
    fromEnv()
    {
        Injection inject;
        const char *env = std::getenv("PDNSPOT_LAUNCH_INJECT");
        if (!env || !*env)
            return inject;
        std::string v = env;
        size_t c1 = v.find(':');
        size_t c2 = c1 == std::string::npos ? std::string::npos
                                            : v.find(':', c1 + 1);
        std::optional<size_t> shard, times;
        if (c2 != std::string::npos) {
            shard = cli::parseInt<size_t>(
                v.substr(c1 + 1, c2 - c1 - 1));
            times = cli::parseInt<size_t>(v.substr(c2 + 1));
        }
        std::string mode =
            c1 == std::string::npos ? "" : v.substr(0, c1);
        if ((mode != "fail" && mode != "kill") || !shard ||
            !times || *shard < 1)
            fatal(strprintf("PDNSPOT_LAUNCH_INJECT must be "
                            "fail:<shard>:<times> or "
                            "kill:<shard>:<times>, got \"%s\"",
                            env));
        inject.mode =
            mode == "fail" ? Mode::Fail : Mode::Kill;
        inject.shard = *shard;
        inject.remaining = static_cast<unsigned>(*times);
        return inject;
    }

    /** Consume one sabotage for this shard, if armed. */
    bool
    claim(Mode wanted, size_t shardIndex)
    {
        if (mode != wanted || shard != shardIndex ||
            remaining == 0)
            return false;
        --remaining;
        return true;
    }
};

/** One shard's lifecycle state. */
struct ShardTask
{
    size_t index = 0; ///< 1-based
    std::string csvPath;
    std::string logPath;
    std::string reportPath; ///< empty when reports not requested

    enum class State
    {
        Pending, ///< waiting for a job slot (or its backoff gate)
        Running,
        Done,
    };
    State state = State::Pending;
    unsigned attempts = 0; ///< attempts started so far
    pid_t pid = -1;
    Clock::time_point readyAt;  ///< backoff gate (Pending)
    Clock::time_point deadline; ///< timeout (Running); max() = none
    bool timedOut = false;      ///< this attempt was killed by us
};

/** Resolved launch parameters after spec + CLI merging. */
struct LaunchPlan
{
    size_t shards;
    size_t jobs;
    double timeoutS;
    unsigned retries;
    double backoffMs;
    uint64_t seed;
    std::string campaignBin;
    std::string workDir;
    bool ownWorkDir; ///< we created a temp dir (clean up on success)
};

std::string
defaultCampaignBin(const char *argv0)
{
    std::string self = argv0 ? argv0 : "";
    // Prefer the binary sitting next to us (the build-tree and
    // install layouts both co-locate the tools); fall back to PATH.
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        self = buf;
    }
    size_t slash = self.find_last_of('/');
    if (slash == std::string::npos)
        return "pdnspot_campaign";
    return self.substr(0, slash) + "/pdnspot_campaign";
}

/**
 * The deterministic backoff schedule: attempt a (1-based) that just
 * failed waits base * 2^(a-1), scaled by a jitter factor in
 * [0.5, 1.5) keyed on (seed, shard, a) — every rerun of the same
 * launch waits exactly as long, and shards never thundering-herd
 * onto the same instant. Capped at 60 s.
 */
double
backoffDelayMs(const LaunchPlan &plan, size_t shard,
               unsigned attempt)
{
    if (plan.backoffMs <= 0.0)
        return 0.0;
    double base = plan.backoffMs;
    for (unsigned i = 1; i < attempt; ++i)
        base *= 2.0;
    HashNoise noise(plan.seed);
    double jitter =
        0.5 + noise.unit((static_cast<uint64_t>(shard) << 16) |
                         attempt);
    return std::min(base * jitter, 60000.0);
}

/** Append a marker line to the shard log (parent side). */
void
appendLogLine(const std::string &path, const std::string &line)
{
    std::ofstream log(path, std::ios::binary | std::ios::app);
    log << line << "\n";
}

/** Last `keep` lines of a shard log, for the failure message. */
std::string
logTail(const std::string &path, size_t keep)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        lines.push_back(line);
        if (lines.size() > keep)
            lines.erase(lines.begin());
    }
    std::string out;
    for (const std::string &l : lines)
        out += "    | " + l + "\n";
    return out;
}

/**
 * Spawn one shard attempt. Stdout/stderr land in the shard log
 * (appended across attempts, with a parent-written header line per
 * attempt). Returns the child pid.
 */
pid_t
spawnShard(const LaunchPlan &plan, const Options &opts,
           ShardTask &shard, Injection &inject)
{
    std::string spec = opts.specPath;
    if (inject.claim(Injection::Mode::Fail, shard.index))
        spec = plan.workDir + "/injected-missing-spec.json";
    // Claimed parent-side (the counter must survive the fork), but
    // executed child-side: the child killing itself is immune to
    // the parent-vs-fast-shard race a post-fork kill(2) would have.
    bool injectKill =
        inject.claim(Injection::Mode::Kill, shard.index);

    std::vector<std::string> args;
    args.push_back(plan.campaignBin);
    args.push_back(spec);
    args.push_back("--shard");
    args.push_back(strprintf("%zu/%zu", shard.index, plan.shards));
    args.push_back("-o");
    args.push_back(shard.csvPath);
    if (!shard.reportPath.empty()) {
        args.push_back("--report");
        args.push_back(shard.reportPath);
    }
    if (opts.threads) {
        args.push_back("--threads");
        args.push_back(strprintf("%u", *opts.threads));
    }
    if (!opts.memo)
        args.push_back("--no-memo");
    if (!opts.traceDir.empty()) {
        args.push_back("--trace-dir");
        args.push_back(opts.traceDir);
    }

    appendLogLine(shard.logPath,
                  strprintf("--- pdnspot_launch: shard %zu/%zu "
                            "attempt %u ---",
                            shard.index, plan.shards,
                            shard.attempts + 1));

    int fd = ::open(shard.logPath.c_str(),
                    O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0)
        fatal(strprintf("cannot open shard log \"%s\": %s",
                        shard.logPath.c_str(),
                        std::strerror(errno)));

    pid_t pid = ::fork();
    if (pid < 0) {
        int err = errno;
        ::close(fd);
        fatal(strprintf("fork failed for shard %zu/%zu: %s",
                        shard.index, plan.shards,
                        std::strerror(err)));
    }
    if (pid == 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        ::close(fd);
        if (injectKill)
            ::raise(SIGKILL); // simulates a shard dying mid-run
        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        // exec failed: report into the log and die with the shell's
        // command-not-found code so the parent retries/raises it.
        std::string msg = "pdnspot_launch: cannot exec " +
                          args[0] + ": " + std::strerror(errno) +
                          "\n";
        ssize_t ignored =
            ::write(STDERR_FILENO, msg.data(), msg.size());
        (void)ignored;
        ::_exit(127);
    }
    ::close(fd);
    return pid;
}

/** Human-readable reason one attempt failed, from waitpid status. */
std::string
describeFailure(const ShardTask &shard, int status,
                double timeoutS)
{
    if (shard.timedOut)
        return strprintf("timed out after %g s (killed)", timeoutS);
    if (WIFSIGNALED(status))
        return strprintf("killed by signal %d", WTERMSIG(status));
    if (WIFEXITED(status))
        return strprintf("exit code %d", WEXITSTATUS(status));
    return "stopped unexpectedly";
}

/**
 * The supervision loop: keeps up to `jobs` shards running, reaps
 * exits, enforces timeouts, schedules retries. Returns normally
 * when every shard is Done; fatal() when one exhausts its retries.
 */
void
superviseShards(const LaunchPlan &plan, const Options &opts,
                std::vector<ShardTask> &shards, Injection &inject,
                cli::ProgressMeter &progress)
{
    const unsigned maxAttempts = plan.retries + 1;
    size_t done = 0, running = 0;

    auto abortRun = [&](const std::string &message) {
        for (ShardTask &s : shards) {
            if (s.state == ShardTask::State::Running &&
                s.pid > 0) {
                ::kill(s.pid, SIGKILL);
                int status = 0;
                ::waitpid(s.pid, &status, 0);
            }
        }
        fatal(message);
    };

    while (done < shards.size()) {
        Clock::time_point now = Clock::now();

        // Fill free job slots with shards whose backoff has lapsed.
        for (ShardTask &s : shards) {
            if (running >= plan.jobs)
                break;
            if (s.state != ShardTask::State::Pending ||
                s.readyAt > now)
                continue;
            s.pid = spawnShard(plan, opts, s, inject);
            s.timedOut = false;
            ++s.attempts;
            s.deadline =
                plan.timeoutS > 0.0
                    ? now + std::chrono::duration_cast<
                                Clock::duration>(
                                std::chrono::duration<double>(
                                    plan.timeoutS))
                    : Clock::time_point::max();
            s.state = ShardTask::State::Running;
            ++running;
        }

        // Reap whatever finished.
        int status = 0;
        pid_t pid;
        while ((pid = ::waitpid(-1, &status, WNOHANG)) > 0) {
            auto it = std::find_if(
                shards.begin(), shards.end(),
                [pid](const ShardTask &s) {
                    return s.state == ShardTask::State::Running &&
                           s.pid == pid;
                });
            if (it == shards.end())
                continue; // not ours (impossible in practice)
            ShardTask &s = *it;
            --running;
            s.pid = -1;
            if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
                s.state = ShardTask::State::Done;
                ++done;
                progress.tick(done);
                continue;
            }
            std::string why =
                describeFailure(s, status, plan.timeoutS);
            appendLogLine(s.logPath,
                          strprintf("--- attempt %u failed: %s ---",
                                    s.attempts, why.c_str()));
            if (s.attempts >= maxAttempts) {
                std::string tail = logTail(s.logPath, 15);
                abortRun(strprintf(
                    "shard %zu/%zu failed after %u attempts (last: "
                    "%s); log: %s\n%s",
                    s.index, plan.shards, s.attempts, why.c_str(),
                    s.logPath.c_str(), tail.c_str()));
            }
            double delayMs =
                backoffDelayMs(plan, s.index, s.attempts);
            warn(strprintf(
                "shard %zu/%zu attempt %u/%u failed (%s); "
                "retrying in %.0f ms",
                s.index, plan.shards, s.attempts, maxAttempts,
                why.c_str(), delayMs));
            s.readyAt =
                Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        delayMs));
            s.state = ShardTask::State::Pending;
        }
        if (pid < 0 && errno != ECHILD && errno != EINTR)
            abortRun(strprintf("waitpid failed: %s",
                               std::strerror(errno)));

        // Enforce per-attempt timeouts: kill and let the reaper
        // above classify the corpse on the next pass.
        now = Clock::now();
        for (ShardTask &s : shards) {
            if (s.state == ShardTask::State::Running &&
                now > s.deadline && !s.timedOut) {
                s.timedOut = true;
                ::kill(s.pid, SIGKILL);
            }
        }

        if (done < shards.size())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
    }
}

int
runCli(const Options &opts, const char *argv0)
{
    // Load the campaign spec up front: an invalid spec must fail in
    // milliseconds here, not n times in n subprocess logs.
    CampaignSpec spec =
        loadCampaignSpecFile(opts.specPath, opts.traceDir);
    LaunchSpec launchSpec = loadLaunchSpecFile(opts.specPath);

    LaunchPlan plan;
    plan.shards = opts.shards.value_or(launchSpec.shards);
    size_t autoJobs = std::max<size_t>(
        1, std::min<size_t>(
               plan.shards, std::thread::hardware_concurrency()));
    plan.jobs = opts.jobs.value_or(
        launchSpec.jobs > 0 ? launchSpec.jobs : autoJobs);
    plan.timeoutS = opts.timeoutS.value_or(launchSpec.timeoutS);
    plan.retries = opts.retries.value_or(launchSpec.retries);
    plan.backoffMs = opts.backoffMs.value_or(launchSpec.backoffMs);
    plan.seed = opts.seed.value_or(launchSpec.seed);
    plan.campaignBin = opts.campaignBin.empty()
                           ? defaultCampaignBin(argv0)
                           : opts.campaignBin;

    size_t cells = spec.cellCount();

    if (opts.dryRun) {
        std::cerr << strprintf(
            "pdnspot_launch: %s: %zu cells over %zu shards "
            "(jobs %zu, timeout %s, retries %u, backoff %g ms, "
            "seed %llu)\n",
            opts.specPath.c_str(), cells, plan.shards, plan.jobs,
            plan.timeoutS > 0.0
                ? strprintf("%g s", plan.timeoutS).c_str()
                : "none",
            plan.retries, plan.backoffMs,
            static_cast<unsigned long long>(plan.seed));
        std::cerr << "  campaign binary: " << plan.campaignBin
                  << "\n";
        for (size_t k = 1; k <= plan.shards; ++k) {
            size_t first = cells * (k - 1) / plan.shards;
            size_t end = cells * k / plan.shards;
            std::cerr << strprintf(
                "  shard %zu/%zu: cells [%zu, %zu)\n", k,
                plan.shards, first, end);
        }
        return 0;
    }

    // The campaign binary must be runnable before we fork n times.
    if (::access(plan.campaignBin.c_str(), X_OK) != 0)
        fatal(strprintf("campaign binary \"%s\" is not executable "
                        "(%s); use --campaign-bin",
                        plan.campaignBin.c_str(),
                        std::strerror(errno)));

    // Work dir: caller-provided (kept), or a fresh temp dir
    // (removed on success unless --keep-work).
    plan.ownWorkDir = opts.workDir.empty();
    if (plan.ownWorkDir) {
        std::string tmpl =
            (fs::temp_directory_path() / "pdnspot_launch.XXXXXX")
                .string();
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        if (!::mkdtemp(buf.data()))
            fatal(strprintf("cannot create work dir (%s)",
                            std::strerror(errno)));
        plan.workDir = buf.data();
    } else {
        plan.workDir = opts.workDir;
        std::error_code ec;
        fs::create_directories(plan.workDir, ec);
        if (ec)
            fatal(strprintf("cannot create work dir \"%s\": %s",
                            plan.workDir.c_str(),
                            ec.message().c_str()));
    }

    const bool wantReports =
        !opts.archiveDir.empty() || !opts.reportDir.empty();
    Injection inject = Injection::fromEnv();

    std::vector<ShardTask> shards(plan.shards);
    for (size_t k = 1; k <= plan.shards; ++k) {
        ShardTask &s = shards[k - 1];
        s.index = k;
        s.csvPath =
            strprintf("%s/shard_%zu.csv", plan.workDir.c_str(), k);
        s.logPath =
            strprintf("%s/shard_%zu.log", plan.workDir.c_str(), k);
        if (wantReports)
            s.reportPath = strprintf("%s/shard_%zu.report.json",
                                     plan.workDir.c_str(), k);
        s.readyAt = Clock::now();
    }

    inform(strprintf(
        "launching %zu shards of %s (%zu cells, %zu at a time) "
        "via %s",
        plan.shards, opts.specPath.c_str(), cells, plan.jobs,
        plan.campaignBin.c_str()));

    cli::ProgressMeter progress(tool, "shards", opts.progress,
                                plan.shards);
    superviseShards(plan, opts, shards, inject, progress);

    // Concatenate in shard order — byte-identical to the unsharded
    // run because shard 1 carries the header and the ranges tile
    // the canonical cell order.
    std::ofstream file;
    if (opts.outPath != "-") {
        file.open(opts.outPath, std::ios::binary);
        if (!file)
            fatal(strprintf("cannot open output file \"%s\"",
                            opts.outPath.c_str()));
    }
    std::ostream &out = opts.outPath != "-" ? file : std::cout;
    size_t bytes = 0;
    for (const ShardTask &s : shards) {
        std::string csv = cli::readFileBytes(s.csvPath);
        bytes += csv.size();
        out << csv;
    }
    out.flush();
    if (opts.outPath != "-") {
        file.close();
        if (!file)
            fatal(strprintf("error writing \"%s\"",
                            opts.outPath.c_str()));
        inform(strprintf("wrote %zu bytes to %s", bytes,
                         opts.outPath.c_str()));
    }

    if (!opts.archiveDir.empty()) {
        ResultArchive archive(opts.archiveDir);
        for (const ShardTask &s : shards) {
            std::string id = archive.ingest(
                cli::readFileBytes(s.reportPath),
                cli::readFileBytes(s.csvPath));
            inform(strprintf("archived shard %zu/%zu as run %s",
                             s.index, plan.shards, id.c_str()));
        }
    }
    if (!opts.reportDir.empty()) {
        std::error_code ec;
        fs::create_directories(opts.reportDir, ec);
        if (ec)
            fatal(strprintf("cannot create report dir \"%s\": %s",
                            opts.reportDir.c_str(),
                            ec.message().c_str()));
        for (const ShardTask &s : shards) {
            fs::copy_file(
                s.reportPath,
                strprintf("%s/shard_%zu.report.json",
                          opts.reportDir.c_str(), s.index),
                fs::copy_options::overwrite_existing, ec);
            if (ec)
                fatal(strprintf("cannot copy shard %zu report to "
                                "\"%s\": %s",
                                s.index, opts.reportDir.c_str(),
                                ec.message().c_str()));
        }
    }

    if (plan.ownWorkDir && !opts.keepWork) {
        std::error_code ec;
        fs::remove_all(plan.workDir, ec); // best-effort cleanup
    } else {
        inform(strprintf("shard outputs kept in %s",
                         plan.workDir.c_str()));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);
    if (opts.logLevel)
        setLogThreshold(*opts.logLevel);
    try {
        return runCli(opts, argc > 0 ? argv[0] : nullptr);
    } catch (const ConfigError &e) {
        std::cerr << "pdnspot_launch: " << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "pdnspot_launch: internal error: " << e.what()
                  << "\n";
        return 3;
    }
}
