/**
 * @file
 * bench_diff: compare (or merge) benchmark-trajectory snapshots.
 *
 * The comparator half of the bench-trajectory subsystem
 * (src/bench/trajectory.hh): scripts/bench.sh merges the per-binary
 * `bench_* --json` documents into a BENCH_<n>.json snapshot at the
 * repo root, then diffs it against the previous snapshot through
 * this tool — so a perf regression fails scripts/check.sh (and CI)
 * exactly like a test failure.
 *
 * Usage: bench_diff <old.json> <new.json> [--warn <pct>] [--fail <pct>]
 *        bench_diff --merge <out.json> <in.json>...
 *
 * Diff mode prints one row per metric of the old snapshot with its
 * verdict, then exits 0 unless any metric regressed by more than the
 * fail threshold (default thresholds: warn 5%, fail 20%). Regression
 * direction follows the metric's unit — rates and ratios regress
 * downward, times upward. Metrics present only in the new snapshot
 * are baselines and are ignored; metrics missing from the new
 * snapshot are reported but do not fail the diff.
 *
 * Merge mode concatenates the records of the input documents into
 * one schema document.
 */

#include <charconv>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/trajectory.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "obs/run_report.hh"

namespace
{

using namespace pdnspot;

constexpr const char *usageText =
    "usage: bench_diff <old.json> <new.json> [--warn <pct>] "
    "[--fail <pct>]\n"
    "       bench_diff --merge <out.json> <in.json>...\n"
    "       bench_diff --version\n";

[[noreturn]] void
usageError(const std::string &message)
{
    std::cerr << "bench_diff: " << message << "\n" << usageText;
    std::exit(2);
}

/** Locale-independent strict double parse (src/common/csv.cc:31). */
double
parsePct(const std::string &value, const char *flag)
{
    double pct = 0.0;
    const char *begin = value.data();
    const char *end = begin + value.size();
    auto [ptr, ec] = std::from_chars(begin, end, pct);
    if (ec != std::errc() || ptr != end || !(pct >= 0.0))
        usageError(std::string(flag) +
                   " must be a non-negative number, got \"" + value +
                   "\"");
    return pct;
}

int
runMerge(const std::vector<std::string> &paths)
{
    if (paths.size() < 2)
        usageError("--merge needs an output and at least one input");
    std::vector<BenchRecord> merged;
    for (size_t i = 1; i < paths.size(); ++i) {
        std::vector<BenchRecord> records =
            readBenchJsonFile(paths[i]);
        merged.insert(merged.end(), records.begin(), records.end());
    }
    std::ofstream os(paths[0], std::ios::binary);
    os << writeBenchJson(merged);
    if (!os.flush())
        fatal(strprintf("cannot write \"%s\"", paths[0].c_str()));
    std::cerr << "bench_diff: merged " << merged.size()
              << " records into " << paths[0] << "\n";
    return 0;
}

int
runDiff(const std::string &oldPath, const std::string &newPath,
        double warnPct, double failPct)
{
    std::vector<BenchDelta> deltas = diffBenchRecords(
        readBenchJsonFile(oldPath), readBenchJsonFile(newPath),
        warnPct, failPct);

    AsciiTable table({"benchmark", "metric", "unit", "old", "new",
                      "change", "verdict"});
    size_t regressions = 0, missing = 0, improved = 0;
    for (const BenchDelta &d : deltas) {
        bool isMissing = d.verdict == BenchVerdict::Missing;
        table.addRow(
            {d.benchmark, d.metric, d.unit,
             AsciiTable::num(d.oldValue, 3),
             isMissing ? "-" : AsciiTable::num(d.newValue, 3),
             isMissing || d.oldValue == 0.0
                 ? "-"
                 : strprintf("%+.1f%%", (d.newValue - d.oldValue) /
                                            d.oldValue * 100.0),
             toString(d.verdict)});
        switch (d.verdict) {
          case BenchVerdict::BigRegression:
            ++regressions;
            break;
          case BenchVerdict::SmallRegression:
            warn(strprintf("bench_diff: %s %s regressed %.1f%% "
                           "(warn threshold %.1f%%)",
                           d.benchmark.c_str(), d.metric.c_str(),
                           d.regressionPct, warnPct));
            break;
          case BenchVerdict::Missing:
            ++missing;
            break;
          case BenchVerdict::Improved:
            ++improved;
            break;
          case BenchVerdict::Flat:
            break;
        }
    }
    table.print(std::cout);
    std::cout << "\nbench_diff: " << oldPath << " -> " << newPath
              << ": " << deltas.size() << " metrics, " << improved
              << " improved, " << regressions
              << " over the fail threshold (" << failPct << "%), "
              << missing << " missing\n";

    if (regressions > 0) {
        std::cerr << "bench_diff: FAIL: " << regressions
                  << " metric(s) regressed more than " << failPct
                  << "%\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool merge = false;
    double warnPct = 5.0, failPct = 20.0;
    std::vector<std::string> paths;

    auto value = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            usageError(std::string(flag) + " needs a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            std::cout << usageText;
            return 0;
        } else if (arg == "--version") {
            // The same stamp bench JSON records carry (git_rev):
            // PDNSPOT_GIT_REV env over the configure-time revision.
            std::cout << "bench_diff " << toolVersion() << " (git "
                      << gitRevision() << ")\n";
            return 0;
        } else if (arg == "--merge") {
            merge = true;
        } else if (arg == "--warn") {
            warnPct = parsePct(value(i, "--warn"), "--warn");
        } else if (arg == "--fail") {
            failPct = parsePct(value(i, "--fail"), "--fail");
        } else if (!arg.empty() && arg[0] == '-') {
            usageError("unknown option \"" + arg + "\"");
        } else {
            paths.push_back(arg);
        }
    }

    try {
        if (merge)
            return runMerge(paths);
        if (paths.size() != 2)
            usageError("expected exactly two snapshot files");
        return runDiff(paths[0], paths[1], warnPct, failPct);
    } catch (const ConfigError &e) {
        std::cerr << "bench_diff: " << e.what() << "\n";
        return 2;
    } catch (const std::exception &e) {
        std::cerr << "bench_diff: internal error: " << e.what()
                  << "\n";
        return 3;
    }
}
