/**
 * @file
 * pdnspot_fleet: simulate a population of device sessions from a
 * fleet spec file.
 *
 * The file-in/CSV-out driver for the fleet subsystem
 * (src/fleet/): loads a JSON fleet spec
 * (src/config/fleet_config.hh), advances every session on the shared
 * virtual clock over the thread pool, and writes the per-bucket
 * aggregate time series as CSV — byte-identical at any thread count
 * (check.sh verifies 1 vs 8 threads with cmp).
 *
 * Usage: pdnspot_fleet <spec.json> [options]
 *   -o <path>        write the aggregate CSV to <path> ("-" =
 *                    stdout, the default)
 *   --summary        print the fleet summary (population shape,
 *                    energy totals, storm verdict, battery-life and
 *                    time-to-empty quantiles) to stderr
 *   --threads <n>    thread count (overrides PDNSPOT_THREADS)
 *   --seed <n>       override the spec's jitter/capacity seed
 *   --trace-dir <d>  resolve relative "file" trace paths against <d>
 *                    (default: the spec file's directory)
 *   --report <path>  write a provenance-stamped pdnspot-report-1
 *                    JSON run report (obs/run_report.hh) with a
 *                    "fleet" aggregate block
 *   --trace-events <path>
 *                    record begin/end spans plus Perfetto counter
 *                    tracks of the fleet aggregates (sessions alive,
 *                    supply power, mode switches per bucket) and
 *                    write Chrome/Perfetto trace-event JSON
 *   --progress       rate-limited buckets/sec + ETA heartbeat on
 *                    stderr; auto-disabled when stderr is not a TTY
 *   --quiet          drop info-level messages (same as
 *                    --log-level warn)
 *   --log-level <l>  minimum message severity: info, warn or silent
 *   --version        print the tool version and git revision
 *   --dry-run        load + validate the spec, report the population
 *                    shape and per-cohort provenance, and exit
 *                    without simulating
 *
 * Exit codes follow the pdnspot_campaign conventions: 0 success, 1
 * ConfigError (with the offending value's file:line:col), 2 usage,
 * 3 internal error. None of the observability flags perturb
 * results: the aggregate CSV is byte-identical with and without
 * --report/--trace-events/--progress.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "cli_common.hh"
#include "common/logging.hh"
#include "config/fleet_config.hh"
#include "fleet/fleet_engine.hh"
#include "obs/run_report.hh"
#include "obs/span_trace.hh"
#include "obs/waveform_io.hh"

namespace
{

using namespace pdnspot;

constexpr const char *usageText =
    "usage: pdnspot_fleet <spec.json> [-o out.csv] [--summary]\n"
    "                     [--threads <n>] [--seed <n>]\n"
    "                     [--trace-dir <dir>] [--report out.json]\n"
    "                     [--trace-events out.trace.json]\n"
    "                     [--progress] [--quiet]\n"
    "                     [--log-level info|warn|silent]\n"
    "                     [--dry-run]\n"
    "       pdnspot_fleet --version\n";

constexpr cli::ToolInfo tool{"pdnspot_fleet", usageText};

/** Parsed command line. */
struct Options
{
    std::string specPath;
    std::string outPath = "-";
    bool summary = false;
    std::optional<unsigned> threads;
    std::optional<uint64_t> seed;
    std::string traceDir;
    std::string reportPath;
    std::string traceEventsPath;
    bool progress = false;
    std::optional<LogLevel> logLevel;
    bool dryRun = false;
};

[[noreturn]] void
usageError(const std::string &message)
{
    cli::usageError(tool, message);
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    auto value = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            usageError(std::string(flag) + " needs a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            std::cout << usageText;
            std::exit(0);
        } else if (arg == "--version") {
            cli::printVersion(tool);
            std::exit(0);
        } else if (arg == "-o") {
            opts.outPath = value(i, "-o");
        } else if (arg == "--summary") {
            opts.summary = true;
        } else if (arg == "--threads") {
            opts.threads =
                cli::parseThreads(tool, value(i, "--threads"));
        } else if (arg == "--seed") {
            std::string v = value(i, "--seed");
            std::optional<uint64_t> seed =
                cli::parseInt<uint64_t>(v);
            if (!seed)
                usageError("--seed must be a non-negative integer, "
                           "got \"" +
                           v + "\"");
            opts.seed = *seed;
        } else if (arg == "--trace-dir") {
            opts.traceDir = value(i, "--trace-dir");
            if (opts.traceDir.empty())
                usageError("--trace-dir needs a directory");
        } else if (arg == "--report") {
            opts.reportPath = value(i, "--report");
            if (opts.reportPath.empty())
                usageError("--report needs a path");
        } else if (arg == "--trace-events") {
            opts.traceEventsPath = value(i, "--trace-events");
            if (opts.traceEventsPath.empty())
                usageError("--trace-events needs a path");
        } else if (arg == "--progress") {
            opts.progress = true;
        } else if (arg == "--quiet") {
            opts.logLevel = LogLevel::Warn;
        } else if (arg == "--log-level") {
            opts.logLevel =
                cli::parseLogLevel(tool, value(i, "--log-level"));
        } else if (arg == "--dry-run") {
            opts.dryRun = true;
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            usageError("unknown option \"" + arg + "\"");
        } else if (opts.specPath.empty()) {
            opts.specPath = arg;
        } else {
            usageError("more than one spec file given");
        }
    }
    if (opts.specPath.empty())
        usageError("missing spec file");
    return opts;
}

/**
 * Perfetto counter tracks of the fleet aggregates: one synthetic
 * counter process carrying sessions_alive, supply_power_w and
 * mode_switches per bucket, stamped at each bucket's end on the
 * virtual clock. Mirrors the probe counter-track shape
 * (obs/waveform_io.hh) so the same Perfetto workflow reads both.
 */
std::vector<JsonValue>
fleetCounterEvents(const FleetResult &result)
{
    // One pid below the probe counter range, so a merged campaign +
    // fleet timeline cannot collide.
    double pid = static_cast<double>(probeCounterPidBase - 1);
    std::vector<JsonValue> events;
    events.reserve(1 + result.buckets.size() * 3);

    {
        std::vector<JsonValue::Member> args;
        args.emplace_back(
            "name", JsonValue::makeString("fleet aggregates"));
        std::vector<JsonValue::Member> fields;
        fields.emplace_back("name",
                            JsonValue::makeString("process_name"));
        fields.emplace_back("ph", JsonValue::makeString("M"));
        fields.emplace_back("pid", JsonValue::makeNumber(pid));
        fields.emplace_back("tid", JsonValue::makeNumber(0.0));
        fields.emplace_back("args",
                            JsonValue::makeObject(std::move(args)));
        events.push_back(JsonValue::makeObject(std::move(fields)));
    }

    auto counter = [&](const char *name, double tS, double value) {
        std::vector<JsonValue::Member> args;
        args.emplace_back("value", JsonValue::makeNumber(value));
        std::vector<JsonValue::Member> fields;
        fields.emplace_back("name", JsonValue::makeString(name));
        fields.emplace_back("ph", JsonValue::makeString("C"));
        fields.emplace_back("ts",
                            JsonValue::makeNumber(tS * 1e6));
        fields.emplace_back("pid", JsonValue::makeNumber(pid));
        fields.emplace_back("tid", JsonValue::makeNumber(0.0));
        fields.emplace_back("args",
                            JsonValue::makeObject(std::move(args)));
        events.push_back(JsonValue::makeObject(std::move(fields)));
    };
    for (const FleetBucketRow &row : result.buckets) {
        counter("sessions_alive", row.tEndS,
                static_cast<double>(row.alive));
        counter("supply_power_w", row.tEndS, row.powerW);
        counter("mode_switches", row.tEndS,
                static_cast<double>(row.modeSwitches));
    }
    return events;
}

/** {count, min, max, p50, p95, p99} of a histogram snapshot. */
JsonValue
histogramJson(const MetricSnapshot &h)
{
    std::vector<JsonValue::Member> m;
    m.emplace_back("count", JsonValue::makeNumber(
                                static_cast<double>(h.count)));
    if (h.count > 0) {
        m.emplace_back("min", JsonValue::makeNumber(h.min));
        m.emplace_back("max", JsonValue::makeNumber(h.max));
        m.emplace_back("p50", JsonValue::makeNumber(
                                  histogramQuantile(h, 0.50)));
        m.emplace_back("p95", JsonValue::makeNumber(
                                  histogramQuantile(h, 0.95)));
        m.emplace_back("p99", JsonValue::makeNumber(
                                  histogramQuantile(h, 0.99)));
    }
    return JsonValue::makeObject(std::move(m));
}

/** The report's tool-specific "fleet" block. */
JsonValue
fleetReportBlock(const FleetResult &result)
{
    auto num = [](double v) { return JsonValue::makeNumber(v); };
    std::vector<JsonValue::Member> fleet;
    fleet.emplace_back(
        "sessions", num(static_cast<double>(result.sessions)));
    fleet.emplace_back(
        "cohorts",
        num(static_cast<double>(result.cohorts.size())));
    fleet.emplace_back(
        "buckets",
        num(static_cast<double>(result.buckets.size())));
    fleet.emplace_back("bucket_s", num(result.bucketS));
    fleet.emplace_back("horizon_s", num(result.horizonS));
    fleet.emplace_back("simulated_s", num(result.simulatedS));
    fleet.emplace_back("total_energy_j", num(result.totalEnergyJ));
    fleet.emplace_back(
        "mode_switches",
        num(static_cast<double>(result.totalSwitches)));
    fleet.emplace_back("deaths",
                       num(static_cast<double>(result.deaths)));
    {
        std::vector<JsonValue::Member> storm;
        storm.emplace_back("baseline", num(result.stormBaseline));
        storm.emplace_back("k", num(result.stormK));
        storm.emplace_back(
            "buckets",
            num(static_cast<double>(result.stormBuckets)));
        fleet.emplace_back("storm",
                           JsonValue::makeObject(std::move(storm)));
    }
    fleet.emplace_back("battery_life_h",
                       histogramJson(result.batteryLifeH));
    fleet.emplace_back("time_to_empty_h",
                       histogramJson(result.timeToEmptyH));
    return JsonValue::makeObject(std::move(fleet));
}

int
runCli(const Options &opts)
{
    FleetSpec spec = loadFleetSpecFile(opts.specPath, opts.traceDir);
    if (opts.seed)
        spec.seed = *opts.seed;

    if (opts.dryRun) {
        std::cerr << "pdnspot_fleet: " << opts.specPath << ": "
                  << spec.sessionCount() << " sessions in "
                  << spec.cohorts.size() << " cohorts, "
                  << spec.bucketCount() << " buckets of "
                  << inSeconds(spec.bucket) << " s (horizon "
                  << inSeconds(spec.horizon) << " s, seed "
                  << spec.seed << ")\n";
        for (const FleetCohort &c : spec.cohorts)
            std::cerr << "  cohort \"" << c.name
                      << "\": " << c.count << " sessions, "
                      << c.platform.name << ", "
                      << pdnKindToString(c.pdn) << ", "
                      << toString(c.mode) << " mode, trace "
                      << c.trace.describe() << "\n";
        return 0;
    }

    // Exporter outputs open before the run: an unwritable path
    // should fail in milliseconds, not after the study.
    std::ofstream reportFile;
    if (!opts.reportPath.empty()) {
        reportFile.open(opts.reportPath, std::ios::binary);
        if (!reportFile)
            fatal(strprintf("cannot open report file \"%s\"",
                            opts.reportPath.c_str()));
    }
    std::ofstream traceEventsFile;
    if (!opts.traceEventsPath.empty()) {
        traceEventsFile.open(opts.traceEventsPath,
                             std::ios::binary);
        if (!traceEventsFile)
            fatal(strprintf("cannot open trace-events file \"%s\"",
                            opts.traceEventsPath.c_str()));
    }

    std::optional<ParallelRunner> ownRunner;
    if (opts.threads)
        ownRunner.emplace(*opts.threads);
    const ParallelRunner &runner =
        ownRunner ? *ownRunner : ParallelRunner::global();
    FleetEngine engine(runner);

    std::ofstream file;
    if (opts.outPath != "-") {
        file.open(opts.outPath, std::ios::binary);
        if (!file)
            fatal(strprintf("cannot open output file \"%s\"",
                            opts.outPath.c_str()));
    }
    std::ostream &out = opts.outPath != "-" ? file : std::cout;

    // Observability installs: metrics whenever a report or the
    // summary is wanted, spans whenever trace events are. All are
    // pure observers — the aggregate CSV stays byte-identical with
    // or without them.
    const bool wantReport = !opts.reportPath.empty();
    std::optional<MetricsRegistry> registry;
    std::optional<MetricsInstallation> metricsInstall;
    if (wantReport || opts.summary) {
        registry.emplace();
        metricsInstall.emplace(*registry);
    }
    std::optional<SpanRecorder> spans;
    std::optional<SpanInstallation> spanInstall;
    if (!opts.traceEventsPath.empty()) {
        spans.emplace();
        spanInstall.emplace(*spans);
    }

    cli::ProgressMeter progress(tool, "buckets", opts.progress,
                                spec.bucketCount());
    auto runStart = std::chrono::steady_clock::now();
    FleetResult result = engine.run(
        spec, opts.progress
                  ? FleetEngine::Progress(
                        [&](uint64_t done, uint64_t) {
                            progress.tick(done);
                        })
                  : FleetEngine::Progress());
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - runStart;
    metricsInstall.reset(); // quiesced: snapshots are final now

    result.writeCsv(out);
    if (opts.outPath != "-") {
        file.close();
        if (!file)
            fatal(strprintf("error writing \"%s\"",
                            opts.outPath.c_str()));
        inform(strprintf("wrote %zu buckets to %s",
                         result.buckets.size(),
                         opts.outPath.c_str()));
    }

    if (spans) {
        spanInstall.reset(); // quiesce before serializing
        TraceEventExport stamp;
        stamp.extraEvents = fleetCounterEvents(result);
        traceEventsFile << writeJson(spans->traceEventsJson(stamp));
        traceEventsFile.close();
        if (!traceEventsFile)
            fatal(strprintf("error writing \"%s\"",
                            opts.traceEventsPath.c_str()));
        inform(strprintf(
            "wrote %zu trace events to %s (%llu spans dropped)",
            spans->eventCount(), opts.traceEventsPath.c_str(),
            static_cast<unsigned long long>(
                spans->droppedSpans())));
    }

    if (wantReport) {
        RunReportInputs rin;
        rin.toolName = "pdnspot_fleet";
        rin.specPath = opts.specPath;
        rin.specText = cli::readFileBytes(opts.specPath);
        rin.specEcho = parseJsonFile(opts.specPath);
        rin.threads = runner.threadCount();
        rin.wallSeconds = wall.count();
        rin.rows = result.buckets.size();
        rin.metrics = &*registry;
        rin.extra.emplace_back("fleet", fleetReportBlock(result));
        reportFile << writeJson(buildRunReport(rin));
        reportFile.close();
        if (!reportFile)
            fatal(strprintf("error writing \"%s\"",
                            opts.reportPath.c_str()));
        inform(strprintf("wrote run report to %s",
                         opts.reportPath.c_str()));
    }

    if (opts.summary)
        result.writeSummary(std::cerr);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);
    if (opts.logLevel)
        setLogThreshold(*opts.logLevel);
    try {
        return runCli(opts);
    } catch (const ConfigError &e) {
        std::cerr << "pdnspot_fleet: " << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        // ModelError (an internal invariant, i.e. a bug) or OS-level
        // failures: report and exit instead of std::terminate.
        std::cerr << "pdnspot_fleet: internal error: " << e.what()
                  << "\n";
        return 3;
    }
}
