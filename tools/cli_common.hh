/**
 * @file
 * Plumbing shared by the pdnspot CLI tools (pdnspot_campaign,
 * pdnspot_fleet): strict locale-independent number parsing, the
 * usage/exit-2 convention, --version/--threads/--log-level handling,
 * the rate-limited TTY progress heartbeat, and small file helpers.
 *
 * Keeping these in one place pins the conventions the smoke tests
 * rely on — exit 2 for usage errors with the usage text on stderr,
 * exit 1 for ConfigError, "name VERSION (git REV)" for --version,
 * thread counts capped at ParallelRunner::maxThreadCount with a
 * warning — so every tool behaves identically and a fix lands in all
 * of them.
 */

#ifndef PDNSPOT_TOOLS_CLI_COMMON_HH
#define PDNSPOT_TOOLS_CLI_COMMON_HH

#include <charconv>
#include <chrono>
#include <optional>
#include <string>

#include "common/logging.hh"

namespace pdnspot
{
namespace cli
{

/** The identity one tool passes to every shared helper. */
struct ToolInfo
{
    const char *name;  ///< binary name, prefixes every message
    const char *usage; ///< full usage text, printed on exit 2
};

/** Print "tool: message" + the usage text to stderr; exit 2. */
[[noreturn]] void usageError(const ToolInfo &tool,
                             const std::string &message);

/** Print "name VERSION (git REV)" to stdout (the --version line). */
void printVersion(const ToolInfo &tool);

/**
 * Locale-independent strict number parses (the src/common/csv.cc:31
 * policy). std::stod honors the global C locale, so under a
 * comma-decimal locale "3.5" stops at the dot and "3,5" parses as
 * 3.5 — the same command line means different runs on different
 * machines. std::from_chars always uses the C grammar; requiring the
 * full string also rejects trailing junk that std::stod's pos check
 * was emulating.
 */
std::optional<double> parseDouble(const std::string &v);

template <typename Int>
std::optional<Int>
parseInt(const std::string &v)
{
    Int out = 0;
    const char *end = v.data() + v.size();
    auto [ptr, ec] = std::from_chars(v.data(), end, out);
    if (ec != std::errc() || ptr != end)
        return std::nullopt;
    return out;
}

/**
 * Bind a --threads value: a positive integer, capped at
 * ParallelRunner::maxThreadCount with a warning on stderr; anything
 * else is a usage error.
 */
unsigned parseThreads(const ToolInfo &tool, const std::string &v);

/** Bind a --log-level value (info, warn or silent). */
LogLevel parseLogLevel(const ToolInfo &tool, const std::string &v);

/** Read a file into a string; fatal() when unreadable. */
std::string readFileBytes(const std::string &path);

/**
 * The progress-heartbeat line body (no \r, no trailing pad):
 * "name: done/total unit (P%), R unit/s, ETA Es". A zero rate or an
 * unknown remaining count prints "ETA --" instead of a fictitious
 * "ETA 0s" (a stalled shard must look stalled), and a zero total
 * drops the "done/total (P%)" segment for a plain count instead of
 * claiming 100%.
 */
std::string formatProgressLine(const char *name, const char *unit,
                               size_t done, size_t total,
                               double elapsedSeconds);

/**
 * The --progress heartbeat: a rate-limited work/sec + ETA line,
 * rewritten in place on stderr. Constructed disabled when stderr is
 * not a TTY (a piped stderr would accumulate control characters, and
 * there is no one watching). Purely observational: it only counts
 * consumed units, never touches them.
 */
class ProgressMeter
{
  public:
    /** `unit` is the work noun the line reports ("cells", ...). */
    ProgressMeter(const ToolInfo &tool, const char *unit,
                  bool enabled, size_t total);

    ~ProgressMeter();

    ProgressMeter(const ProgressMeter &) = delete;
    ProgressMeter &operator=(const ProgressMeter &) = delete;

    void tick(size_t done);

  private:
    const char *_name;
    const char *_unit;
    bool _enabled;
    size_t _total;
    std::chrono::steady_clock::time_point _start;
    std::chrono::steady_clock::time_point _lastPrint;
    bool _printed = false;
};

} // namespace cli
} // namespace pdnspot

#endif // PDNSPOT_TOOLS_CLI_COMMON_HH
