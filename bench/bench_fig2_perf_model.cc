/**
 * @file
 * Regenerates Fig. 2: (a) the power budget required to raise the
 * compute clock by 1% per TDP, and (b) the TDP power-budget breakdown
 * under the worst commonly-used PDN.
 */

#include "bench_util.hh"

#include "common/table.hh"
#include "perf/budget_breakdown.hh"
#include "perf/freq_sensitivity.hh"

namespace
{

using namespace pdnspot;

void
printFigure()
{
    const Platform &pf = bench::platform();
    const FreqSensitivity &sens = pf.perfModel().sensitivity();
    const PdnModel &ivr = pf.pdn(PdnKind::IVR);

    bench::banner("Fig. 2(a) - power-budget increase for +1% clock");
    {
        AsciiTable t({"TDP", "CPU (mW per 1%)", "GFX (mW per 1%)"});
        for (double tdp : evaluationTdpsW) {
            t.addRow({strprintf("%.0fW", tdp),
                      AsciiTable::num(
                          inMilliwatts(sens.supplyPerPercent(
                              watts(tdp), WorkloadType::MultiThread,
                              ivr)),
                          1),
                      AsciiTable::num(
                          inMilliwatts(sens.supplyPerPercent(
                              watts(tdp), WorkloadType::Graphics,
                              ivr)),
                          1)});
        }
        t.print(std::cout);
    }

    bench::banner("Fig. 2(b) - power-budget breakdown (worst PDN)");
    {
        std::array<const PdnModel *, 3> pdns = {
            &pf.pdn(PdnKind::IVR), &pf.pdn(PdnKind::MBVR),
            &pf.pdn(PdnKind::LDO)};
        AsciiTable t({"TDP", "SA+IO", "CPU", "LLC", "PDN loss",
                      "worst PDN"});
        for (double tdp : evaluationTdpsW) {
            BudgetShares s = budgetBreakdown(
                pf.operatingPoints(), pdns, watts(tdp),
                WorkloadType::MultiThread);
            t.addRow({strprintf("%.0fW", tdp),
                      AsciiTable::percent(s.saIo, 0),
                      AsciiTable::percent(s.cpu, 0),
                      AsciiTable::percent(s.llc, 0),
                      AsciiTable::percent(s.pdnLoss, 0), s.worstPdn});
        }
        t.print(std::cout);
    }
    std::cout << "\n";
}

void
sensitivitySweep(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    const FreqSensitivity &sens = pf.perfModel().sensitivity();
    for (auto _ : state) {
        double sum = 0.0;
        for (double tdp : evaluationTdpsW) {
            sum += inMilliwatts(sens.nominalPerPercent(
                watts(tdp), WorkloadType::MultiThread));
        }
        benchmark::DoNotOptimize(sum);
    }
}

BENCHMARK(sensitivitySweep);

void
breakdownRow(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    std::array<const PdnModel *, 3> pdns = {&pf.pdn(PdnKind::IVR),
                                            &pf.pdn(PdnKind::MBVR),
                                            &pf.pdn(PdnKind::LDO)};
    for (auto _ : state) {
        BudgetShares s = budgetBreakdown(pf.operatingPoints(), pdns,
                                         watts(18.0),
                                         WorkloadType::MultiThread);
        benchmark::DoNotOptimize(s);
    }
}

BENCHMARK(breakdownRow);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printFigure)
