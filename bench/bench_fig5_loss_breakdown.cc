/**
 * @file
 * Regenerates Fig. 5: breakdown of PDN power-conversion losses for
 * the three commonly-used PDNs at 4/18/50 W (CPU-intensive workload,
 * AR = 56%), with normalized chip input current and load-line.
 */

#include "bench_util.hh"

#include "common/table.hh"

namespace
{

using namespace pdnspot;

void
printFigure()
{
    const Platform &pf = bench::platform();
    bench::banner("Fig. 5 - PDN power-conversion loss breakdown "
                  "(CPU-intensive, AR=56%)");

    OperatingPointModel::Query q;
    q.ar = 0.56;
    q.type = WorkloadType::MultiThread;

    EteeResult ivr_ref;
    AsciiTable t({"PDN", "TDP", "VR ineff.", "I2R core+GFX",
                  "I2R SA+IO", "others", "ETEE", "Iin (norm)",
                  "RLL (norm)"});
    for (PdnKind kind : classicPdnKinds) {
        for (double tdp : {4.0, 18.0, 50.0}) {
            q.tdp = watts(tdp);
            PlatformState s = pf.operatingPoints().build(q);
            EteeResult r = pf.pdn(kind).evaluate(s);
            EteeResult ivr_r = pf.pdn(PdnKind::IVR).evaluate(s);
            t.addRow({toString(kind), strprintf("%.0fW", tdp),
                      AsciiTable::percent(r.lossFraction(r.loss.vrLoss),
                                          1),
                      AsciiTable::percent(
                          r.lossFraction(r.loss.conductionCompute), 1),
                      AsciiTable::percent(
                          r.lossFraction(r.loss.conductionUncore), 1),
                      AsciiTable::percent(r.lossFraction(r.loss.other),
                                          1),
                      AsciiTable::percent(r.etee(), 1),
                      AsciiTable::num(r.chipInputCurrent /
                                          ivr_r.chipInputCurrent,
                                      2),
                      AsciiTable::num(inMilliohms(r.computeLoadLine) /
                                          inMilliohms(
                                              ivr_r.computeLoadLine),
                                      2)});
        }
    }
    t.print(std::cout);
    std::cout << "\n";
}

void
lossBreakdownSweep(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    OperatingPointModel::Query q;
    q.tdp = watts(18.0);
    PlatformState s = pf.operatingPoints().build(q);
    for (auto _ : state) {
        double total = 0.0;
        for (PdnKind kind : classicPdnKinds)
            total += inWatts(pf.pdn(kind).evaluate(s).loss.total());
        benchmark::DoNotOptimize(total);
    }
}

BENCHMARK(lossBreakdownSweep);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printFigure)
