/**
 * @file
 * Regenerates Fig. 8(c): average power of the four battery-life
 * workloads under the five PDNs, normalized to the IVR PDN, plus a
 * battery-life projection for a 50 Wh pack.
 */

#include "bench_util.hh"

#include "campaign/campaign_engine.hh"
#include "common/table.hh"
#include "sim/battery_model.hh"

namespace
{

using namespace pdnspot;

/** The four battery-life profiles x reference platform x five PDNs. */
CampaignResult
batteryCampaign()
{
    CampaignSpec spec;
    for (const BatteryProfile &profile : batteryLifeWorkloads())
        spec.traces.push_back(traceFromBatteryProfile(
            profile, milliseconds(33.3), 4));
    spec.platforms = {ultraportablePreset()};
    spec.pdns.assign(allPdnKinds.begin(), allPdnKinds.end());
    spec.mode = SimMode::Static;
    return CampaignEngine().run(spec);
}

void
printFigure()
{
    CampaignResult result = batteryCampaign();
    const std::string pf = ultraportablePreset().name;
    auto avg = [&](const std::string &trace, PdnKind kind) {
        return result.cell(trace, pf, kind).sim.averagePower();
    };

    bench::banner("Fig. 8(c) - battery-life workload average power "
                  "(IVR = 100%)");

    AsciiTable t({"Workload", "IVR", "MBVR", "LDO", "I+MBVR",
                  "FlexWatts"});
    for (const BatteryProfile &profile : batteryLifeWorkloads()) {
        std::string trace = profile.name + "-trace";
        double base = inWatts(avg(trace, PdnKind::IVR));
        std::vector<std::string> row = {profile.name};
        for (PdnKind kind : allPdnKinds) {
            row.push_back(AsciiTable::percent(
                inWatts(avg(trace, kind)) / base, 1));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    bench::banner("Battery life with a 50 Wh pack (hours)");
    BatteryModel battery(wattHours(50.0));
    AsciiTable life({"Workload", "IVR", "FlexWatts", "gain"});
    for (const BatteryProfile &profile : batteryLifeWorkloads()) {
        std::string trace = profile.name + "-trace";
        double h_ivr = battery.lifeHours(avg(trace, PdnKind::IVR));
        double h_flex =
            battery.lifeHours(avg(trace, PdnKind::FlexWatts));
        life.addRow({profile.name, AsciiTable::num(h_ivr, 1),
                     AsciiTable::num(h_flex, 1),
                     AsciiTable::percent(h_flex / h_ivr - 1.0, 1)});
    }
    life.print(std::cout);
    std::cout << "\n";
}

void
batteryRow(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    for (auto _ : state) {
        Power p = batteryAveragePower(pf, PdnKind::FlexWatts,
                                      videoPlayback());
        benchmark::DoNotOptimize(p);
    }
}

BENCHMARK(batteryRow);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printFigure)
