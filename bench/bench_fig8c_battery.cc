/**
 * @file
 * Regenerates Fig. 8(c): average power of the four battery-life
 * workloads under the five PDNs, normalized to the IVR PDN, plus a
 * battery-life projection for a 50 Wh pack.
 */

#include "bench_util.hh"

#include "common/table.hh"
#include "sim/battery_model.hh"

namespace
{

using namespace pdnspot;

void
printFigure()
{
    const Platform &pf = bench::platform();
    bench::banner("Fig. 8(c) - battery-life workload average power "
                  "(IVR = 100%)");

    AsciiTable t({"Workload", "IVR", "MBVR", "LDO", "I+MBVR",
                  "FlexWatts"});
    for (const BatteryProfile &profile : batteryLifeWorkloads()) {
        double base =
            inWatts(batteryAveragePower(pf, PdnKind::IVR, profile));
        std::vector<std::string> row = {profile.name};
        for (PdnKind kind : allPdnKinds) {
            row.push_back(AsciiTable::percent(
                inWatts(batteryAveragePower(pf, kind, profile)) / base,
                1));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    bench::banner("Battery life with a 50 Wh pack (hours)");
    BatteryModel battery(wattHours(50.0));
    AsciiTable life({"Workload", "IVR", "FlexWatts", "gain"});
    for (const BatteryProfile &profile : batteryLifeWorkloads()) {
        double h_ivr = battery.lifeHours(
            batteryAveragePower(pf, PdnKind::IVR, profile));
        double h_flex = battery.lifeHours(
            batteryAveragePower(pf, PdnKind::FlexWatts, profile));
        life.addRow({profile.name, AsciiTable::num(h_ivr, 1),
                     AsciiTable::num(h_flex, 1),
                     AsciiTable::percent(h_flex / h_ivr - 1.0, 1)});
    }
    life.print(std::cout);
    std::cout << "\n";
}

void
batteryRow(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    for (auto _ : state) {
        Power p = batteryAveragePower(pf, PdnKind::FlexWatts,
                                      videoPlayback());
        benchmark::DoNotOptimize(p);
    }
}

BENCHMARK(batteryRow);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printFigure)
