/**
 * @file
 * Regenerates Fig. 8(a): SPEC CPU2006 average performance of the five
 * PDNs across the 4-50 W TDP range, normalized to the IVR PDN.
 */

#include "bench_util.hh"

#include "common/table.hh"
#include "workload/spec_cpu2006.hh"

namespace
{

using namespace pdnspot;

void
printFigure()
{
    const Platform &pf = bench::platform();
    bench::banner("Fig. 8(a) - SPEC CPU2006 average performance "
                  "(IVR = 100%)");

    AsciiTable t({"TDP", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts"});
    for (double tdp : evaluationTdpsW) {
        std::vector<std::string> row = {strprintf("%.0fW", tdp)};
        for (PdnKind kind : allPdnKinds) {
            row.push_back(AsciiTable::percent(
                suiteMeanRelativePerf(pf, kind, watts(tdp),
                                      specCpu2006()),
                1));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\n";
}

void
fig8aRow(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    for (auto _ : state) {
        double v = suiteMeanRelativePerf(
            pf, PdnKind::FlexWatts,
            watts(static_cast<double>(state.range(0))),
            specCpu2006());
        benchmark::DoNotOptimize(v);
    }
}

BENCHMARK(fig8aRow)->Arg(4)->Arg(18)->Arg(50);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printFigure)
