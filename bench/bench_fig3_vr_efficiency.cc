/**
 * @file
 * Regenerates Fig. 3: off-chip VR efficiency curves as a function of
 * output current, output voltage, and VR power state (Vin = 7.2 V).
 */

#include "bench_util.hh"

#include "common/table.hh"
#include "vr/buck_vr.hh"

namespace
{

using namespace pdnspot;

void
printFigure()
{
    bench::banner("Fig. 3 - off-chip VR efficiency curves (Vin=7.2V)");
    BuckVr vr(BuckParams::motherboard("V_IN"));

    const double currents[] = {0.1, 0.2, 0.5, 1.0, 2.0, 3.0,
                               5.0, 10.0, 20.0};
    for (VrPowerState ps : {VrPowerState::PS0, VrPowerState::PS1}) {
        std::cout << "Power state " << toString(ps) << ":\n";
        AsciiTable t({"Iout (A)", "Vout=0.6", "Vout=0.7", "Vout=1.0",
                      "Vout=1.8"});
        for (double iout : currents) {
            if (amps(iout) > vr.stateParams(ps).maxCurrent)
                continue;
            std::vector<std::string> row = {AsciiTable::num(iout, 1)};
            for (double vout : {0.6, 0.7, 1.0, 1.8}) {
                row.push_back(AsciiTable::percent(
                    vr.efficiency(volts(7.2), volts(vout), amps(iout),
                                  ps),
                    1));
            }
            t.addRow(row);
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Autonomous state selection (Vout=1.0V):\n";
    AsciiTable t({"Iout (A)", "best state", "efficiency"});
    for (double iout : {0.02, 0.05, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0}) {
        auto ps = vr.bestState(volts(7.2), volts(1.0), amps(iout));
        t.addRow({AsciiTable::num(iout, 2),
                  ps ? toString(*ps) : "none",
                  AsciiTable::percent(
                      vr.efficiencyAuto(volts(7.2), volts(1.0),
                                        amps(iout)),
                      1)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

void
efficiencyLookup(benchmark::State &state)
{
    BuckVr vr(BuckParams::motherboard("V_IN"));
    double iout = 0.1;
    for (auto _ : state) {
        double eta = vr.efficiencyAuto(volts(7.2), volts(1.0),
                                       amps(iout));
        benchmark::DoNotOptimize(eta);
        iout = iout < 40.0 ? iout * 1.5 : 0.1;
    }
}

BENCHMARK(efficiencyLookup);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printFigure)
