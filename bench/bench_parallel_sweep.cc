/**
 * @file
 * Measures the ParallelRunner speedup on the sweep hot path: a dense
 * ETEE-vs-TDP sweep over all five PDN architectures, serial vs the
 * shared thread pool, plus parallel ETEE-table characterization.
 */

#include "bench_util.hh"

#include <chrono>

#include "common/parallel.hh"
#include "pdnspot/sweep.hh"

namespace
{

using namespace pdnspot;

std::vector<double>
denseTdps()
{
    std::vector<double> tdps;
    for (double w = 4.0; w <= 50.0; w += 0.25)
        tdps.push_back(w);
    return tdps;
}

/** Shared sweep loop: trajectory counters for any pool width. */
void
sweepBench(benchmark::State &state, unsigned nthreads)
{
    const Platform &pf = bench::platform();
    ParallelRunner pool(nthreads);
    SweepEngine engine(pf, pool);
    std::vector<PdnKind> kinds(allPdnKinds.begin(), allPdnKinds.end());
    std::vector<double> tdps = denseTdps();
    uint64_t points = 0;
    auto start = std::chrono::steady_clock::now();
    for (auto _ : state) {
        SweepResult r = engine.eteeVsTdp(WorkloadType::MultiThread,
                                         0.56, tdps, kinds);
        benchmark::DoNotOptimize(r);
        points += tdps.size() * kinds.size();
    }
    double ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    state.counters["points_per_sec"] =
        ns > 0.0 ? static_cast<double>(points) / (ns * 1e-9) : 0.0;
    state.counters["threads"] = nthreads;
}

void
sweepSerial(benchmark::State &state)
{
    sweepBench(state, 1);
}

void
sweepParallel(benchmark::State &state)
{
    sweepBench(state, static_cast<unsigned>(state.range(0)));
}

void
eteeTableSerial(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    ParallelRunner serial(1);
    for (auto _ : state) {
        EteeTable table(pf.flexWatts(), pf.operatingPoints(),
                        EteeTable::GridSpec(), serial);
        benchmark::DoNotOptimize(table);
    }
}

void
eteeTableParallel(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    ParallelRunner pool(static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        EteeTable table(pf.flexWatts(), pf.operatingPoints(),
                        EteeTable::GridSpec(), pool);
        benchmark::DoNotOptimize(table);
    }
}

BENCHMARK(sweepSerial);
BENCHMARK(sweepParallel)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"threads"});
BENCHMARK(eteeTableSerial);
BENCHMARK(eteeTableParallel)->Arg(2)->Arg(4)->Arg(8);

void
printSummary()
{
    bench::banner("ParallelRunner sweep fan-out");
    std::cout << "hardware threads: "
              << ParallelRunner::global().threadCount() << "\n"
              << "dense sweep: " << denseTdps().size() << " TDPs x "
              << allPdnKinds.size() << " PDN kinds\n\n";
}

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printSummary)
