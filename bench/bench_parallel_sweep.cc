/**
 * @file
 * Measures the ParallelRunner speedup on the sweep hot path: a dense
 * ETEE-vs-TDP sweep over all five PDN architectures, serial vs the
 * shared thread pool, plus parallel ETEE-table characterization.
 */

#include "bench_util.hh"

#include "common/parallel.hh"
#include "pdnspot/sweep.hh"

namespace
{

using namespace pdnspot;

std::vector<double>
denseTdps()
{
    std::vector<double> tdps;
    for (double w = 4.0; w <= 50.0; w += 0.25)
        tdps.push_back(w);
    return tdps;
}

void
sweepSerial(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    ParallelRunner serial(1);
    SweepEngine engine(pf, serial);
    std::vector<PdnKind> kinds(allPdnKinds.begin(), allPdnKinds.end());
    std::vector<double> tdps = denseTdps();
    for (auto _ : state) {
        SweepResult r = engine.eteeVsTdp(WorkloadType::MultiThread,
                                         0.56, tdps, kinds);
        benchmark::DoNotOptimize(r);
    }
}

void
sweepParallel(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    ParallelRunner pool(static_cast<unsigned>(state.range(0)));
    SweepEngine engine(pf, pool);
    std::vector<PdnKind> kinds(allPdnKinds.begin(), allPdnKinds.end());
    std::vector<double> tdps = denseTdps();
    for (auto _ : state) {
        SweepResult r = engine.eteeVsTdp(WorkloadType::MultiThread,
                                         0.56, tdps, kinds);
        benchmark::DoNotOptimize(r);
    }
}

void
eteeTableSerial(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    ParallelRunner serial(1);
    for (auto _ : state) {
        EteeTable table(pf.flexWatts(), pf.operatingPoints(),
                        EteeTable::GridSpec(), serial);
        benchmark::DoNotOptimize(table);
    }
}

void
eteeTableParallel(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    ParallelRunner pool(static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        EteeTable table(pf.flexWatts(), pf.operatingPoints(),
                        EteeTable::GridSpec(), pool);
        benchmark::DoNotOptimize(table);
    }
}

BENCHMARK(sweepSerial);
BENCHMARK(sweepParallel)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(eteeTableSerial);
BENCHMARK(eteeTableParallel)->Arg(2)->Arg(4)->Arg(8);

void
printSummary()
{
    bench::banner("ParallelRunner sweep fan-out");
    std::cout << "hardware threads: "
              << ParallelRunner::global().threadCount() << "\n"
              << "dense sweep: " << denseTdps().size() << " TDPs x "
              << allPdnKinds.size() << " PDN kinds\n\n";
}

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printSummary)
