/**
 * @file
 * Regenerates Fig. 8(b): 3DMark06 average performance of the five
 * PDNs across the 4-50 W TDP range, normalized to the IVR PDN.
 */

#include "bench_util.hh"

#include "common/table.hh"
#include "workload/gfx_3dmark06.hh"

namespace
{

using namespace pdnspot;

void
printFigure()
{
    const Platform &pf = bench::platform();
    bench::banner(
        "Fig. 8(b) - 3DMark06 average performance (IVR = 100%)");

    AsciiTable t({"TDP", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts"});
    for (double tdp : evaluationTdpsW) {
        std::vector<std::string> row = {strprintf("%.0fW", tdp)};
        for (PdnKind kind : allPdnKinds) {
            row.push_back(AsciiTable::percent(
                suiteMeanRelativePerf(pf, kind, watts(tdp),
                                      gfx3dmark06()),
                1));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\n";
}

void
fig8bRow(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    for (auto _ : state) {
        double v = suiteMeanRelativePerf(
            pf, PdnKind::FlexWatts,
            watts(static_cast<double>(state.range(0))),
            gfx3dmark06());
        benchmark::DoNotOptimize(v);
    }
}

BENCHMARK(fig8bRow)->Arg(4)->Arg(25)->Arg(50);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printFigure)
