/**
 * @file
 * Benchmarks the campaign engine: one trace x platform x PDN batch
 * simulation (the workhorse behind the evaluation cross-products),
 * serial vs the shared thread pool, plus the per-cell cost of the
 * three simulation modes.
 */

#include "bench_util.hh"

#include <chrono>

#include "campaign/campaign_engine.hh"
#include "common/table.hh"
#include "workload/trace_generator.hh"

namespace
{

using namespace pdnspot;

/** Sink for throughput runs: cells are simulated, then dropped. */
class DiscardSink : public CampaignSink
{
  public:
    void consume(CampaignCellResult) override {}
};

CampaignSpec
smallSpec(SimMode mode)
{
    CampaignSpec spec;
    TraceGenerator gen(7);
    spec.traces.push_back(gen.burstyCompute(4, milliseconds(10.0),
                                            milliseconds(30.0)));
    spec.traces.push_back(gen.randomMix(16, milliseconds(10.0)));
    spec.platforms = {fanlessTabletPreset(), ultraportablePreset()};
    spec.pdns.assign(allPdnKinds.begin(), allPdnKinds.end());
    spec.mode = mode;
    return spec;
}

/**
 * The memo cache's target shape: battery-profile frame traces repeat
 * the same few operating points hundreds of times, so nearly every
 * evaluation after the first frame is a memo hit.
 */
CampaignSpec
repeatedStateSpec()
{
    CampaignSpec spec;
    for (const BatteryProfile &profile : batteryLifeWorkloads())
        spec.traces.push_back(traceFromBatteryProfile(
            profile, milliseconds(33.3), 256));
    spec.platforms = {ultraportablePreset()};
    spec.pdns.assign(allPdnKinds.begin(), allPdnKinds.end());
    spec.mode = SimMode::Oracle;
    return spec;
}

void
printFigure()
{
    bench::banner("Campaign engine - 2 traces x 2 platforms x 5 PDNs "
                  "(PMU mode)");
    CampaignResult result =
        CampaignEngine().run(smallSpec(SimMode::Pmu));
    BatteryModel battery(wattHours(50.0));
    AsciiTable t({"PDN", "supply (J)", "mean ETEE", "switches"});
    for (const CampaignPdnSummary &s :
         result.summarizeByPdn(battery)) {
        t.addRow({toString(s.pdn),
                  AsciiTable::num(inJoules(s.supplyEnergy), 3),
                  AsciiTable::percent(s.meanEtee(), 1),
                  std::to_string(s.modeSwitches)});
    }
    t.print(std::cout);

    // The memo-cache acceptance check: identical numbers either way
    // (the campaignMemo benchmarks then show the runtime gap).
    CampaignSpec repeated = repeatedStateSpec();
    ParallelRunner serial(1);
    CampaignResult with =
        CampaignEngine(serial).memoize(true).run(repeated);
    CampaignResult without =
        CampaignEngine(serial).memoize(false).run(repeated);
    std::cout << "\nEteeMemo on repeated-state campaign ("
              << repeated.cellCount() << " cells, "
              << repeated.traces[0].resolve().phases().size()
              << " phases/trace): results "
              << (with == without ? "bit-identical" : "MISMATCH")
              << " with memo on/off\n\n";
}

void
campaignSerial(benchmark::State &state)
{
    ParallelRunner serial(1);
    CampaignEngine engine(serial);
    CampaignSpec spec = smallSpec(SimMode::Static);
    for (auto _ : state) {
        CampaignResult r = engine.run(spec);
        benchmark::DoNotOptimize(r.cells.data());
    }
}

void
campaignPooled(benchmark::State &state)
{
    CampaignEngine engine;
    CampaignSpec spec = smallSpec(SimMode::Static);
    for (auto _ : state) {
        CampaignResult r = engine.run(spec);
        benchmark::DoNotOptimize(r.cells.data());
    }
}

void
campaignMode(benchmark::State &state)
{
    CampaignEngine engine;
    CampaignSpec spec =
        smallSpec(static_cast<SimMode>(state.range(0)));
    for (auto _ : state) {
        CampaignResult r = engine.run(spec);
        benchmark::DoNotOptimize(r.cells.data());
    }
}

void
campaignMemo(benchmark::State &state)
{
    ParallelRunner serial(1);
    CampaignEngine engine(serial);
    engine.memoize(state.range(0) != 0);
    CampaignSpec spec = repeatedStateSpec();
    CampaignRunStats last;
    for (auto _ : state) {
        CampaignResult r = engine.run(spec);
        benchmark::DoNotOptimize(r.cells.data());
    }
    // One stats pass outside the timed loop: the hit rate is a
    // deterministic property of (spec, memoize), not a timing.
    DiscardSink sink;
    engine.run(spec, sink, &last);
    state.counters["memo_hit_rate"] = last.memoHitRate();
    state.counters["threads"] = 1;
}

/**
 * The trajectory workhorse: streamed campaign execution measured in
 * cells/sec and ns/phase, with the memo hit rate alongside — the
 * three metrics scripts/bench.sh snapshots into BENCH_<n>.json and
 * tools/bench_diff gates on.
 */
void
campaignThroughput(benchmark::State &state)
{
    unsigned nthreads = static_cast<unsigned>(state.range(0));
    ParallelRunner pool(nthreads);
    CampaignEngine engine(pool);
    CampaignSpec spec = repeatedStateSpec();
    size_t cellCount = spec.cellCount();

    uint64_t cells = 0;
    uint64_t phases = 0;
    CampaignRunStats last;
    auto start = std::chrono::steady_clock::now();
    for (auto _ : state) {
        DiscardSink sink;
        CampaignRunStats stats;
        engine.run(spec, sink, 0, cellCount, &stats);
        cells += stats.cells;
        phases += stats.phases;
        last = stats;
    }
    double ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    state.counters["cells_per_sec"] =
        ns > 0.0 ? static_cast<double>(cells) / (ns * 1e-9) : 0.0;
    state.counters["ns_per_phase"] =
        phases ? ns / static_cast<double>(phases) : 0.0;
    state.counters["memo_hit_rate"] = last.memoHitRate();
    state.counters["threads"] = nthreads;
}

BENCHMARK(campaignSerial)->Unit(benchmark::kMillisecond);
BENCHMARK(campaignPooled)->Unit(benchmark::kMillisecond);
BENCHMARK(campaignMemo)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"memo"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(campaignMode)
    ->Arg(static_cast<int>(SimMode::Static))
    ->Arg(static_cast<int>(SimMode::Pmu))
    ->Arg(static_cast<int>(SimMode::Oracle))
    ->Unit(benchmark::kMillisecond);
BENCHMARK(campaignThroughput)
    ->Arg(1)
    ->Arg(8)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printFigure)
