/**
 * @file
 * Benchmarks the campaign engine: one trace x platform x PDN batch
 * simulation (the workhorse behind the evaluation cross-products),
 * serial vs the shared thread pool, plus the per-cell cost of the
 * three simulation modes.
 */

#include "bench_util.hh"

#include "campaign/campaign_engine.hh"
#include "common/table.hh"
#include "workload/trace_generator.hh"

namespace
{

using namespace pdnspot;

CampaignSpec
smallSpec(SimMode mode)
{
    CampaignSpec spec;
    TraceGenerator gen(7);
    spec.traces.push_back(gen.burstyCompute(4, milliseconds(10.0),
                                            milliseconds(30.0)));
    spec.traces.push_back(gen.randomMix(16, milliseconds(10.0)));
    spec.platforms = {fanlessTabletPreset(), ultraportablePreset()};
    spec.pdns.assign(allPdnKinds.begin(), allPdnKinds.end());
    spec.mode = mode;
    return spec;
}

void
printFigure()
{
    bench::banner("Campaign engine - 2 traces x 2 platforms x 5 PDNs "
                  "(PMU mode)");
    CampaignResult result =
        CampaignEngine().run(smallSpec(SimMode::Pmu));
    BatteryModel battery(wattHours(50.0));
    AsciiTable t({"PDN", "supply (J)", "mean ETEE", "switches"});
    for (const CampaignPdnSummary &s :
         result.summarizeByPdn(battery)) {
        t.addRow({toString(s.pdn),
                  AsciiTable::num(inJoules(s.supplyEnergy), 3),
                  AsciiTable::percent(s.meanEtee(), 1),
                  std::to_string(s.modeSwitches)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

void
campaignSerial(benchmark::State &state)
{
    ParallelRunner serial(1);
    CampaignEngine engine(serial);
    CampaignSpec spec = smallSpec(SimMode::Static);
    for (auto _ : state) {
        CampaignResult r = engine.run(spec);
        benchmark::DoNotOptimize(r.cells.data());
    }
}

void
campaignPooled(benchmark::State &state)
{
    CampaignEngine engine;
    CampaignSpec spec = smallSpec(SimMode::Static);
    for (auto _ : state) {
        CampaignResult r = engine.run(spec);
        benchmark::DoNotOptimize(r.cells.data());
    }
}

void
campaignMode(benchmark::State &state)
{
    CampaignEngine engine;
    CampaignSpec spec =
        smallSpec(static_cast<SimMode>(state.range(0)));
    for (auto _ : state) {
        CampaignResult r = engine.run(spec);
        benchmark::DoNotOptimize(r.cells.data());
    }
}

BENCHMARK(campaignSerial)->Unit(benchmark::kMillisecond);
BENCHMARK(campaignPooled)->Unit(benchmark::kMillisecond);
BENCHMARK(campaignMode)
    ->Arg(static_cast<int>(SimMode::Static))
    ->Arg(static_cast<int>(SimMode::Pmu))
    ->Arg(static_cast<int>(SimMode::Oracle))
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printFigure)
