/**
 * @file
 * Regenerates Fig. 7: per-benchmark SPEC CPU2006 performance of the
 * five PDNs at 4 W TDP, normalized to the IVR PDN and sorted by
 * performance-scalability.
 */

#include "bench_util.hh"

#include "common/table.hh"
#include "workload/spec_cpu2006.hh"

namespace
{

using namespace pdnspot;

void
printFigure()
{
    const Platform &pf = bench::platform();
    bench::banner(
        "Fig. 7 - SPEC CPU2006 performance at 4W TDP (IVR = 100%)");

    std::array<std::vector<double>, allPdnKinds.size()> rel;
    for (size_t k = 0; k < allPdnKinds.size(); ++k) {
        rel[k] = suiteRelativePerf(pf, allPdnKinds[k], watts(4.0),
                                   specCpu2006());
    }

    AsciiTable t({"Benchmark", "Scal.", "IVR", "MBVR", "LDO", "I+MBVR",
                  "FlexWatts"});
    const auto &suite = specCpu2006();
    for (size_t i = 0; i < suite.size(); ++i) {
        t.addRow({suite[i].name,
                  AsciiTable::percent(suite[i].scalability, 0),
                  AsciiTable::percent(rel[0][i], 1),
                  AsciiTable::percent(rel[1][i], 1),
                  AsciiTable::percent(rel[2][i], 1),
                  AsciiTable::percent(rel[3][i], 1),
                  AsciiTable::percent(rel[4][i], 1)});
    }
    std::vector<std::string> avg = {"Average", "-"};
    for (size_t k = 0; k < allPdnKinds.size(); ++k) {
        double sum = 0.0;
        for (double r : rel[k])
            sum += r;
        avg.push_back(AsciiTable::percent(
            sum / static_cast<double>(rel[k].size()), 1));
    }
    t.addRow(avg);
    t.print(std::cout);
    std::cout << "\n";
}

void
fig7FullSweep(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    for (auto _ : state) {
        double mean = suiteMeanRelativePerf(pf, PdnKind::FlexWatts,
                                            watts(4.0), specCpu2006());
        benchmark::DoNotOptimize(mean);
    }
}

BENCHMARK(fig7FullSweep);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printFigure)
