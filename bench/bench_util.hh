/**
 * @file
 * Shared helpers for the bench binaries.
 *
 * Every bench regenerates one of the paper's tables or figures
 * (printed before the google-benchmark timing runs) so the repository
 * can reproduce the evaluation section end to end.
 *
 * Every bench binary also speaks `--json <path>`: the timing runs
 * are additionally captured through a TrajectoryReporter and written
 * as a bench-trajectory document (src/bench/trajectory.hh) — one
 * record per benchmark real time and per user counter, stamped with
 * the git revision ($PDNSPOT_GIT_REV, set by scripts/bench.sh) and
 * the thread count. scripts/bench.sh merges these documents into the
 * BENCH_<n>.json snapshots that tools/bench_diff compares run over
 * run.
 */

#ifndef PDNSPOT_BENCH_BENCH_UTIL_HH
#define PDNSPOT_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/trajectory.hh"
#include "common/logging.hh"
#include "pdnspot/experiments.hh"
#include "pdnspot/platform.hh"

namespace pdnspot::bench
{

/** Lazily-constructed shared platform (ETEE tables are not free). */
inline const Platform &
platform()
{
    static const Platform instance;
    return instance;
}

/** Banner naming the paper artifact a bench regenerates. */
inline void
banner(const std::string &what)
{
    std::cout << "\n=== PDNspot reproduction: " << what << " ===\n\n";
}

/**
 * Console reporter that additionally captures every iteration run
 * as trajectory records: "real_time" in the benchmark's time unit,
 * plus one record per user counter (units via benchMetricUnit). A
 * counter named "threads" overrides the record's thread stamp
 * instead of becoming a metric — the benches use it to report their
 * internal ParallelRunner width, which google-benchmark (always
 * single-threaded here) cannot see.
 */
class TrajectoryReporter : public benchmark::ConsoleReporter
{
  public:
    TrajectoryReporter()
    {
        const char *rev = std::getenv("PDNSPOT_GIT_REV");
        _gitRev = rev && *rev ? rev : "unknown";
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        ConsoleReporter::ReportRuns(runs);
        for (const Run &run : runs) {
            if (run.run_type != Run::RT_Iteration ||
                run.error_occurred)
                continue;
            unsigned threads = static_cast<unsigned>(run.threads);
            auto t = run.counters.find("threads");
            if (t != run.counters.end())
                threads = static_cast<unsigned>(t->second.value);

            auto add = [&](const std::string &metric, double value,
                           std::string unit) {
                BenchRecord r;
                r.benchmark = run.benchmark_name();
                r.metric = metric;
                r.value = value;
                r.unit = std::move(unit);
                r.gitRev = _gitRev;
                r.threads = threads;
                _records.push_back(std::move(r));
            };
            add("real_time", run.GetAdjustedRealTime(),
                benchmark::GetTimeUnitString(run.time_unit));
            for (const auto &[name, counter] : run.counters) {
                if (name == "threads")
                    continue;
                add(name, counter.value, benchMetricUnit(name));
            }
        }
    }

    const std::vector<BenchRecord> &records() const
    {
        return _records;
    }

  private:
    std::string _gitRev;
    std::vector<BenchRecord> _records;
};

/**
 * Common main: strip `--json <path>` (google-benchmark rejects
 * unknown flags), print the figure, run the timing benchmarks, and
 * write the trajectory document when requested.
 */
inline int
benchMain(int argc, char **argv, void (*print_figure)())
{
    std::string jsonPath;
    std::vector<char *> args;
    args.reserve(static_cast<size_t>(argc) + 1);
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json") {
            if (i + 1 >= argc) {
                std::cerr << argv[0] << ": --json needs a path\n";
                return 2;
            }
            jsonPath = argv[++i];
        } else if (arg.rfind("--json=", 0) == 0) {
            jsonPath = arg.substr(7);
        } else {
            args.push_back(argv[i]);
        }
    }
    if (!jsonPath.empty() && jsonPath != "-" &&
        jsonPath.front() == '-') {
        std::cerr << argv[0] << ": --json needs a path, got \""
                  << jsonPath << "\"\n";
        return 2;
    }
    int filteredArgc = static_cast<int>(args.size());
    args.push_back(nullptr);

    print_figure();
    ::benchmark::Initialize(&filteredArgc, args.data());
    if (::benchmark::ReportUnrecognizedArguments(filteredArgc,
                                                 args.data()))
        return 1;

    if (jsonPath.empty()) {
        ::benchmark::RunSpecifiedBenchmarks();
    } else {
        TrajectoryReporter reporter;
        ::benchmark::RunSpecifiedBenchmarks(&reporter);
        std::string text = writeBenchJson(reporter.records());
        if (jsonPath == "-") {
            std::cout << text;
        } else {
            std::ofstream os(jsonPath, std::ios::binary);
            os << text;
            if (!os.flush()) {
                std::cerr << argv[0] << ": cannot write \""
                          << jsonPath << "\"\n";
                return 1;
            }
        }
    }
    ::benchmark::Shutdown();
    return 0;
}

} // namespace pdnspot::bench

/** Common main: print the figure, then run the timing benchmarks. */
#define PDNSPOT_BENCH_MAIN(print_figure)                              \
    int main(int argc, char **argv)                                   \
    {                                                                 \
        return ::pdnspot::bench::benchMain(argc, argv,                \
                                           print_figure);             \
    }

#endif // PDNSPOT_BENCH_BENCH_UTIL_HH
