/**
 * @file
 * Shared helpers for the bench binaries.
 *
 * Every bench regenerates one of the paper's tables or figures
 * (printed before the google-benchmark timing runs) so the repository
 * can reproduce the evaluation section end to end.
 */

#ifndef PDNSPOT_BENCH_BENCH_UTIL_HH
#define PDNSPOT_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>

#include <benchmark/benchmark.h>

#include "common/logging.hh"
#include "pdnspot/experiments.hh"
#include "pdnspot/platform.hh"

namespace pdnspot::bench
{

/** Lazily-constructed shared platform (ETEE tables are not free). */
inline const Platform &
platform()
{
    static const Platform instance;
    return instance;
}

/** Banner naming the paper artifact a bench regenerates. */
inline void
banner(const std::string &what)
{
    std::cout << "\n=== PDNspot reproduction: " << what << " ===\n\n";
}

} // namespace pdnspot::bench

/** Common main: print the figure, then run the timing benchmarks. */
#define PDNSPOT_BENCH_MAIN(print_figure)                              \
    int main(int argc, char **argv)                                   \
    {                                                                 \
        print_figure();                                               \
        ::benchmark::Initialize(&argc, argv);                         \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))     \
            return 1;                                                 \
        ::benchmark::RunSpecifiedBenchmarks();                        \
        ::benchmark::Shutdown();                                      \
        return 0;                                                     \
    }

#endif // PDNSPOT_BENCH_BENCH_UTIL_HH
