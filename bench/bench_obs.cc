/**
 * @file
 * Micro-benchmarks for the observability layer's zero-overhead
 * contracts: metricAdd and SpanScope with no registry/recorder
 * installed (one relaxed load + branch) vs installed, SignalProbe
 * frame ingestion, and the end-to-end simulator cost of running
 * probed vs unprobed.
 */

#include "bench_util.hh"

#include <chrono>

#include "obs/metrics.hh"
#include "obs/probe.hh"
#include "obs/span_trace.hh"
#include "sim/interval_simulator.hh"
#include "workload/trace_generator.hh"

namespace
{

using namespace pdnspot;

ProbeFrame
syntheticFrame(uint64_t phase)
{
    ProbeFrame f;
    f.phase = phase;
    f.start = seconds(0.01 * static_cast<double>(phase));
    f.duration = seconds(0.01);
    f.supplyPowerW = 5.0;
    f.nominalPowerW = 4.0;
    f.mode = 0;
    return f;
}

void
printFigure()
{
    bench::banner("Observability overhead - probes are pure "
                  "observers");

    const Platform &platform = bench::platform();
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    TraceGenerator gen(7);
    PhaseTrace trace = gen.randomMix(64, milliseconds(5.0));

    ProbeSpec spec;
    SignalProbe probe(spec, watts(15.0));
    SimResult probed = sim.run(trace, platform.pdn(PdnKind::IVR),
                               nullptr, &probe);
    SimResult unprobed = sim.run(trace, platform.pdn(PdnKind::IVR));
    std::cout << "SimResult probed vs unprobed: "
              << (probed == unprobed ? "bit-identical"
                                     : "MISMATCH")
              << " over " << trace.phases().size() << " phases, "
              << probe.take().rows.size() << " rows captured\n\n";
}

void
obsMetricAddDisabled(benchmark::State &state)
{
    for (auto _ : state)
        metricAdd(Metric::CampaignPhases);
}

void
obsMetricAddEnabled(benchmark::State &state)
{
    MetricsRegistry registry;
    {
        MetricsInstallation install(registry);
        for (auto _ : state)
            metricAdd(Metric::CampaignPhases);
        MetricsRegistry::flushThread();
    }
    benchmark::DoNotOptimize(
        registry.counterValue(Metric::CampaignPhases));
}

void
obsSpanScopeDisabled(benchmark::State &state)
{
    for (auto _ : state)
        SpanScope scope("bench", "obs");
}

void
obsSpanScopeEnabled(benchmark::State &state)
{
    // A bounded buffer fills and then drops; dropped spans still pay
    // the accounting, which is the steady-state cost on long runs.
    SpanRecorder recorder;
    SpanInstallation install(recorder);
    for (auto _ : state)
        SpanScope scope("bench", "obs");
    benchmark::DoNotOptimize(recorder.eventCount());
}

void
obsProbeSamplePhase(benchmark::State &state)
{
    // Per-frame ingestion cost with every signal selected: shadow
    // budget update, clip detection, row build.
    ProbeSpec spec;
    SignalProbe probe(spec, watts(15.0));
    uint64_t phase = 0;
    for (auto _ : state)
        probe.samplePhase(syntheticFrame(phase++));
    benchmark::DoNotOptimize(probe.take().rows.data());
}

void
obsProbeTriggeredSamplePhase(benchmark::State &state)
{
    // The ring path: no trigger ever fires, so every row is parked
    // and eventually evicted — the probe's cost on cells where
    // nothing interesting happens.
    ProbeSpec spec;
    spec.trigger = ProbeTriggerSpec{ProbeTriggerSpec::On::ModeSwitch,
                                    8};
    SignalProbe probe(spec, watts(15.0));
    uint64_t phase = 0;
    for (auto _ : state)
        probe.samplePhase(syntheticFrame(phase++));
    benchmark::DoNotOptimize(probe.take().rows.data());
}

void
obsSimProbed(benchmark::State &state)
{
    // End-to-end contract: probes compiled in but unbound (Arg 0)
    // must cost one null check per phase vs a bound probe (Arg 1).
    const Platform &platform = bench::platform();
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    TraceGenerator gen(7);
    PhaseTrace trace = gen.randomMix(64, milliseconds(5.0));
    PhaseSoA soa(trace);
    const bool bound = state.range(0) != 0;

    uint64_t phases = 0;
    auto start = std::chrono::steady_clock::now();
    for (auto _ : state) {
        ProbeSpec spec;
        SignalProbe probe(spec, watts(15.0));
        SimResult r =
            sim.run(soa, platform.pdn(PdnKind::IVR), nullptr,
                    bound ? &probe : nullptr);
        benchmark::DoNotOptimize(r);
        phases += trace.phases().size();
    }
    double ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    state.counters["ns_per_phase"] =
        phases ? ns / static_cast<double>(phases) : 0.0;
}

BENCHMARK(obsMetricAddDisabled);
BENCHMARK(obsMetricAddEnabled);
BENCHMARK(obsSpanScopeDisabled);
BENCHMARK(obsSpanScopeEnabled);
BENCHMARK(obsProbeSamplePhase);
BENCHMARK(obsProbeTriggeredSamplePhase);
BENCHMARK(obsSimProbed)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"probe"})
    ->Unit(benchmark::kMicrosecond);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printFigure)
