/**
 * @file
 * Extension study: transient (di/dt) voltage noise across the PDNs.
 *
 * Quantifies the paper's Sec. 2.3 qualitative claims: the IVR PDN is
 * the most di/dt-sensitive topology (little on-die decap), MBVR the
 * least (generous board/package decap), and FlexWatts inherits the
 * IVR's decap stack in both modes. Reports the first-droop estimate
 * for a Turbo-entry-class current step and the largest step each PDN
 * absorbs within a 30 mV guardband.
 */

#include "bench_util.hh"

#include "common/table.hh"
#include "pdn/transient.hh"

namespace
{

using namespace pdnspot;

void
printFigure()
{
    bench::banner("Extension - di/dt first-droop comparison");

    const Current step = amps(15.0); // Turbo-entry-class load step
    AsciiTable t({"PDN", "edge", "die droop (mV)", "pkg droop (mV)",
                  "board droop (mV)", "worst (mV)",
                  "max step @30mV (A)"});
    for (PdnKind kind : allPdnKinds) {
        TransientModel m(DecapStack::forPdn(kind));
        for (double edge_ns : {0.5, 5.0, 50.0}) {
            Time edge = microseconds(edge_ns * 1e-3);
            DroopEstimate e = m.droop(step, edge);
            t.addRow({toString(kind),
                      strprintf("%.1fns", edge_ns),
                      AsciiTable::num(inMillivolts(e.dieDroop), 1),
                      AsciiTable::num(inMillivolts(e.packageDroop), 1),
                      AsciiTable::num(inMillivolts(e.boardDroop), 1),
                      AsciiTable::num(inMillivolts(e.worst()), 1),
                      AsciiTable::num(
                          inAmps(m.maxStep(millivolts(30.0), edge)),
                          1)});
        }
    }
    t.print(std::cout);
    std::cout << "\nShape check: IVR-style stacks droop hardest at "
                 "fast edges; MBVR absorbs the largest steps; "
                 "FlexWatts == IVR (shared decap, Sec. 6).\n\n";
}

void
droopEstimation(benchmark::State &state)
{
    TransientModel m(DecapStack::forPdn(PdnKind::FlexWatts));
    double step = 1.0;
    for (auto _ : state) {
        DroopEstimate e = m.droop(amps(step), microseconds(0.001));
        benchmark::DoNotOptimize(e);
        step = step < 40.0 ? step + 1.0 : 1.0;
    }
}

BENCHMARK(droopEstimation);

void
maxStepSearch(benchmark::State &state)
{
    TransientModel m(DecapStack::forPdn(PdnKind::MBVR));
    for (auto _ : state) {
        Current c = m.maxStep(millivolts(30.0), microseconds(0.002));
        benchmark::DoNotOptimize(c);
    }
}

BENCHMARK(maxStepSearch);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printFigure)
