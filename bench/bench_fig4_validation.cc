/**
 * @file
 * Regenerates Fig. 4: PDNspot validation - measured vs predicted ETEE
 * for single-/multi-thread/graphics traces at 4/18/50 W across the
 * 40-80% AR band, the package C-state ladder (Fig. 4j), and the
 * Sec. 4.3 accuracy summary.
 */

#include "bench_util.hh"

#include "common/table.hh"
#include "pdnspot/validation.hh"

namespace
{

using namespace pdnspot;

void
printFigure()
{
    const Platform &pf = bench::platform();
    ValidationHarness harness(pf);

    bench::banner("Fig. 4(a-i) - measured vs predicted ETEE");
    for (WorkloadType type :
         {WorkloadType::SingleThread, WorkloadType::MultiThread,
          WorkloadType::Graphics}) {
        for (double tdp : {4.0, 18.0, 50.0}) {
            std::cout << toString(type) << " @ " << tdp << "W:\n";
            AsciiTable t({"AR", "IVR meas", "IVR pred", "MBVR meas",
                          "MBVR pred", "LDO meas", "LDO pred"});
            for (double ar = 0.40; ar <= 0.801; ar += 0.10) {
                ValidationTrace trace;
                trace.type = type;
                trace.tdp = watts(tdp);
                trace.ar = ar;
                trace.name = strprintf("%s-%.0f-%.0f",
                                       toString(type).c_str(), tdp,
                                       ar * 100);
                std::vector<std::string> row = {
                    AsciiTable::percent(ar, 0)};
                for (PdnKind kind : classicPdnKinds) {
                    const PdnModel &pdn = pf.pdn(kind);
                    row.push_back(AsciiTable::percent(
                        harness.measuredEtee(pdn, trace), 1));
                    row.push_back(AsciiTable::percent(
                        harness.predictedEtee(pdn, trace), 1));
                }
                t.addRow(row);
            }
            t.print(std::cout);
            std::cout << "\n";
        }
    }

    bench::banner("Fig. 4(j) - ETEE in battery-life power states");
    {
        AsciiTable t({"State", "IVR", "MBVR", "LDO"});
        for (PackageCState cs : batteryLifeCStates) {
            ValidationTrace trace;
            trace.cstate = cs;
            trace.type = WorkloadType::BatteryLife;
            std::vector<std::string> row = {toString(cs)};
            for (PdnKind kind : classicPdnKinds) {
                row.push_back(AsciiTable::percent(
                    harness.predictedEtee(pf.pdn(kind), trace), 1));
            }
            t.addRow(row);
        }
        t.print(std::cout);
    }

    bench::banner("Sec. 4.3 - model accuracy over 200 traces");
    {
        auto set = harness.makeTraceSet(200);
        AsciiTable t({"PDN", "avg accuracy", "min", "max"});
        for (PdnKind kind : classicPdnKinds) {
            ValidationStats s = harness.validate(pf.pdn(kind), set);
            t.addRow({toString(kind),
                      AsciiTable::percent(s.avgAccuracy, 2),
                      AsciiTable::percent(s.minAccuracy, 2),
                      AsciiTable::percent(s.maxAccuracy, 2)});
        }
        t.print(std::cout);
    }
    std::cout << "\n";
}

void
validate200Traces(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    ValidationHarness harness(pf);
    auto set = harness.makeTraceSet(200);
    for (auto _ : state) {
        ValidationStats s =
            harness.validate(pf.pdn(PdnKind::IVR), set);
        benchmark::DoNotOptimize(s);
    }
}

BENCHMARK(validate200Traces);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printFigure)
