/**
 * @file
 * Ablation study (extension beyond the paper's evaluation):
 *
 *  1. FlexWatts mode policies on a dynamic trace: oracle vs the
 *     Algorithm 1 predictor (with the real 94 us switch cost) vs
 *     statically pinning either mode.
 *  2. Predictor hysteresis sweep: switches vs energy.
 *  3. The paper's linearized performance model vs the exact TDP
 *     budget solver.
 */

#include "bench_util.hh"

#include "common/table.hh"
#include "perf/budget_solver.hh"
#include "sim/interval_simulator.hh"
#include "workload/spec_cpu2006.hh"
#include "workload/trace_generator.hh"

namespace
{

using namespace pdnspot;

void
printFigure()
{
    const Platform &pf = bench::platform();
    const Power tdp = watts(15.0);
    IntervalSimulator sim(pf.operatingPoints(), tdp);
    TraceGenerator gen(2026);
    PhaseTrace trace = gen.burstyCompute(12, milliseconds(60.0),
                                         milliseconds(90.0));

    bench::banner("Ablation 1 - mode policies on a bursty trace "
                  "(15W TDP)");
    {
        SimResult oracle = sim.runOracle(trace, pf.flexWatts());

        PmuConfig cfg;
        cfg.tdp = tdp;
        Pmu pmu(cfg, pf.predictor());
        SimResult predicted = sim.run(trace, pf.flexWatts(), pmu);

        SimResult ivr_static =
            sim.run(trace, pf.pdn(PdnKind::IVR));
        SimResult mbvr_static =
            sim.run(trace, pf.pdn(PdnKind::MBVR));

        AsciiTable t({"Policy", "energy (J)", "avg ETEE", "switches",
                      "switch overhead (us)"});
        auto row = [&](const std::string &name, const SimResult &r) {
            t.addRow({name, AsciiTable::num(inJoules(r.supplyEnergy), 3),
                      AsciiTable::percent(r.averageEtee(), 1),
                      std::to_string(r.modeSwitches),
                      AsciiTable::num(
                          inMicroseconds(r.switchOverheadTime), 0)});
        };
        row("FlexWatts oracle (free switches)", oracle);
        row("FlexWatts Algorithm 1 + 94us flow", predicted);
        row("static IVR PDN", ivr_static);
        row("static MBVR PDN", mbvr_static);
        t.print(std::cout);
    }

    bench::banner("Ablation 2 - predictor hysteresis sweep");
    {
        AsciiTable t({"hysteresis", "energy (J)", "switches"});
        for (double h : {0.0, 0.002, 0.005, 0.01, 0.02, 0.05}) {
            ModePredictor predictor(pf.eteeTable(), h);
            PmuConfig cfg;
            cfg.tdp = tdp;
            Pmu pmu(cfg, predictor);
            SimResult r = sim.run(trace, pf.flexWatts(), pmu);
            t.addRow({AsciiTable::percent(h, 1),
                      AsciiTable::num(inJoules(r.supplyEnergy), 3),
                      std::to_string(r.modeSwitches)});
        }
        t.print(std::cout);
    }

    bench::banner("Ablation 3 - linearized perf model vs exact TDP "
                  "budget solver (LDO vs IVR)");
    {
        BudgetSolver solver(pf.operatingPoints());
        Workload w;
        w.name = "ideal";
        w.type = WorkloadType::MultiThread;
        w.ar = 0.56;
        w.scalability = 1.0;

        AsciiTable t({"TDP", "linearized gain", "exact gain",
                      "exact clamped at Fmax"});
        for (double tdp_w : {4.0, 8.0, 10.0, 18.0}) {
            PerfResult lin = pf.perfModel().relativePerformance(
                pf.pdn(PdnKind::LDO), pf.pdn(PdnKind::IVR),
                watts(tdp_w), w);
            auto ivr_sol = solver.solve(pf.pdn(PdnKind::IVR),
                                        watts(tdp_w), w);
            auto ldo_sol = solver.solve(pf.pdn(PdnKind::LDO),
                                        watts(tdp_w), w);
            double exact_gain =
                ldo_sol.frequency / ivr_sol.frequency - 1.0;
            t.addRow({strprintf("%.0fW", tdp_w),
                      AsciiTable::percent(lin.freqGainPercent / 100.0,
                                          1),
                      AsciiTable::percent(exact_gain, 1),
                      ldo_sol.clampedAtFmax ? "yes" : "no"});
        }
        t.print(std::cout);
        std::cout << "\nThe linearization overstates the gain where "
                     "dP/df steepens above the baseline clock.\n\n";
    }
}

void
pmuSimulation(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    IntervalSimulator sim(pf.operatingPoints(), watts(15.0));
    TraceGenerator gen(99);
    PhaseTrace trace = gen.burstyCompute(6, milliseconds(30.0),
                                         milliseconds(40.0));
    for (auto _ : state) {
        PmuConfig cfg;
        cfg.tdp = watts(15.0);
        Pmu pmu(cfg, pf.predictor());
        SimResult r = sim.run(trace, pf.flexWatts(), pmu);
        benchmark::DoNotOptimize(r);
    }
}

BENCHMARK(pmuSimulation);

void
exactBudgetSolve(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    BudgetSolver solver(pf.operatingPoints());
    Workload w;
    w.type = WorkloadType::MultiThread;
    w.ar = 0.56;
    for (auto _ : state) {
        auto sol = solver.solve(pf.pdn(PdnKind::LDO), watts(10.0), w);
        benchmark::DoNotOptimize(sol);
    }
}

BENCHMARK(exactBudgetSolve);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printFigure)
