/**
 * @file
 * Regenerates Fig. 8(d): bill-of-materials cost of the five PDNs
 * across the TDP range, normalized to the IVR PDN, with the
 * worst-case rail sizing behind it.
 */

#include "bench_util.hh"

#include "common/table.hh"

namespace
{

using namespace pdnspot;

void
printFigure()
{
    const Platform &pf = bench::platform();
    bench::banner("Fig. 8(d) - normalized BOM cost (IVR = 1.0)");

    AsciiTable t({"TDP", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts",
                  "regime"});
    for (double tdp : evaluationTdpsW) {
        std::vector<std::string> row = {strprintf("%.0fW", tdp)};
        for (PdnKind kind : allPdnKinds) {
            row.push_back(AsciiTable::num(
                normalizedBom(pf, kind, watts(tdp)), 2));
        }
        row.push_back(pf.costs()
                              .evaluate(pf.pdn(PdnKind::IVR),
                                        watts(tdp))
                              .usesPmic
                          ? "PMIC"
                          : "VRM");
        t.addRow(row);
    }
    t.print(std::cout);

    bench::banner("Worst-case rail sizing at 50W (per PDN)");
    AsciiTable rails({"PDN", "rail", "Vout", "Iccmax (A)"});
    for (PdnKind kind : allPdnKinds) {
        for (const OffChipRail &r :
             pf.costs().worstCaseRails(pf.pdn(kind), watts(50.0))) {
            rails.addRow({toString(kind), r.name,
                          AsciiTable::num(inVolts(r.outputVoltage), 2),
                          AsciiTable::num(inAmps(r.iccMax), 1)});
        }
    }
    rails.print(std::cout);
    std::cout << "\n";
}

void
bomEvaluation(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    for (auto _ : state) {
        double total = 0.0;
        for (PdnKind kind : allPdnKinds)
            total += normalizedBom(pf, kind, watts(18.0));
        benchmark::DoNotOptimize(total);
    }
}

BENCHMARK(bomEvaluation);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printFigure)
