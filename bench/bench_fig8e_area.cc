/**
 * @file
 * Regenerates Fig. 8(e): board area of the five PDNs across the TDP
 * range, normalized to the IVR PDN, plus the FlexWatts on-die area
 * overhead from Sec. 6.
 */

#include "bench_util.hh"

#include "common/table.hh"
#include "flexwatts/hybrid_vr.hh"

namespace
{

using namespace pdnspot;

void
printFigure()
{
    const Platform &pf = bench::platform();
    bench::banner("Fig. 8(e) - normalized board area (IVR = 1.0)");

    AsciiTable t({"TDP", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts"});
    for (double tdp : evaluationTdpsW) {
        std::vector<std::string> row = {strprintf("%.0fW", tdp)};
        for (PdnKind kind : allPdnKinds) {
            row.push_back(AsciiTable::num(
                normalizedArea(pf, kind, watts(tdp)), 2));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    bench::banner("Sec. 6 - FlexWatts on-die area overhead");
    std::cout << "LDO-mode overhead per hybrid rail: "
              << AsciiTable::num(inSquareMillimetres(
                                     HybridVr::ldoModeAreaOverhead()),
                                 3)
              << " mm^2 (4 rails: "
              << AsciiTable::num(
                     4.0 * inSquareMillimetres(
                               HybridVr::ldoModeAreaOverhead()),
                     3)
              << " mm^2; ~0.03-0.04% of a client die)\n\n";
}

void
areaEvaluation(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    for (auto _ : state) {
        double total = 0.0;
        for (PdnKind kind : allPdnKinds)
            total += normalizedArea(pf, kind, watts(36.0));
        benchmark::DoNotOptimize(total);
    }
}

BENCHMARK(areaEvaluation);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printFigure)
