/**
 * @file
 * Regenerates Table 1 (platform architecture) and Table 2 (PDNspot
 * model parameters) of the paper, then times operating-point builds.
 */

#include "bench_util.hh"

#include "common/table.hh"
#include "pdn/ivr_pdn.hh"
#include "pdn/ldo_pdn.hh"
#include "pdn/mbvr_pdn.hh"
#include "power/operating_point.hh"
#include "vr/buck_vr.hh"
#include "vr/ivr.hh"

namespace
{

using namespace pdnspot;

void
printTables()
{
    bench::banner("Table 1 - processor architecture summary");
    {
        AsciiTable t({"Domain", "Description"});
        t.addRow({"Core0/1", "single clock domain, 0.8-4.0 GHz"});
        t.addRow({"GFX", "graphics engines, 0.1-1.2 GHz"});
        t.addRow({"LLC", "last-level cache, tracks core voltage"});
        t.addRow({"SA", "memory/display/IO fabric, fixed frequency"});
        t.addRow({"IO", "DDRIO + display IO, fixed frequency"});
        t.print(std::cout);
    }

    bench::banner("Table 2 - main PDNspot model parameters");
    const OperatingPointModel &opm =
        bench::platform().operatingPoints();
    IvrPdnParams ivr_p;
    MbvrParams mbvr_p;
    LdoPdnParams ldo_p;
    IvrParams ivr_vr;
    LdoParams ldo_vr;

    AsciiTable t({"Parameter", "IVR", "MBVR", "LDO"});
    t.addRow({"Load-line RLL (mOhm)",
              strprintf("IN=%.2f", inMilliohms(ivr_p.rllIn)),
              strprintf("Cores/GFX/SA/IO=%.1f/%.1f/%.1f/%.1f",
                        inMilliohms(mbvr_p.rllCores),
                        inMilliohms(mbvr_p.rllGfx),
                        inMilliohms(mbvr_p.rllSa),
                        inMilliohms(mbvr_p.rllIo)),
              strprintf("IN/SA/IO=%.2f/%.1f/%.1f",
                        inMilliohms(ldo_p.rllIn),
                        inMilliohms(ldo_p.rllSa),
                        inMilliohms(ldo_p.rllIo))});
    t.addRow({"VR tolerance band (mV)",
              strprintf("%.0f", inMillivolts(ivr_p.tob)),
              strprintf("%.0f", inMillivolts(mbvr_p.tob)),
              strprintf("%.0f", inMillivolts(ldo_p.tob))});
    t.addRow({"On-chip VR efficiency", "81-88% (buck model)", "-",
              "(Vout/Vin) x 99.1%"});
    t.addRow({"Off-chip VR efficiency",
              "72-93% f(Vin,Vout,Iout,PS)",
              "72-93% f(Vin,Vout,Iout,PS)",
              "72-93% f(Vin,Vout,Iout,PS)"});
    t.addRow({"Leakage fraction FL", "22% (45% GFX)", "same", "same"});
    t.addRow({"Cores PNOM (W)",
              strprintf("%.2f-%.1f over 4-50W TDP",
                        inWatts(opm.coresNominal(watts(4.0))),
                        inWatts(opm.coresNominal(watts(50.0)))),
              "same", "same"});
    t.addRow({"LLC PNOM (W)",
              strprintf("%.2f-%.1f",
                        inWatts(opm.llcNominal(watts(4.0))),
                        inWatts(opm.llcNominal(watts(50.0)))),
              "same", "same"});
    t.addRow({"GFX PNOM (W)",
              strprintf("%.2f-%.1f",
                        inWatts(opm.gfxNominal(watts(4.0))),
                        inWatts(opm.gfxNominal(watts(50.0)))),
              "same", "same"});
    t.addRow({"PG impedance RPG (mOhm)", "-", "1.5", "1.5 (SA/IO)"});
    t.print(std::cout);
    std::cout << "\n";
}

void
buildOperatingPoint(benchmark::State &state)
{
    OperatingPointModel opm;
    OperatingPointModel::Query q;
    q.tdp = watts(static_cast<double>(state.range(0)));
    for (auto _ : state) {
        PlatformState s = opm.build(q);
        benchmark::DoNotOptimize(s);
    }
}

BENCHMARK(buildOperatingPoint)->Arg(4)->Arg(18)->Arg(50);

void
evaluateClassicPdns(benchmark::State &state)
{
    OperatingPointModel opm;
    IvrPdn ivr;
    MbvrPdn mbvr;
    LdoPdn ldo;
    OperatingPointModel::Query q;
    q.tdp = watts(18.0);
    PlatformState s = opm.build(q);
    for (auto _ : state) {
        double sum = ivr.evaluate(s).etee() + mbvr.evaluate(s).etee() +
                     ldo.evaluate(s).etee();
        benchmark::DoNotOptimize(sum);
    }
}

BENCHMARK(evaluateClassicPdns);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printTables)
