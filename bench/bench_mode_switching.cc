/**
 * @file
 * Regenerates the Sec. 6 FlexWatts overhead numbers: the 94 us
 * mode-switch flow budget, its comparison against DVFS latency, and
 * the runtime cost of Algorithm 1 itself.
 */

#include "bench_util.hh"

#include "common/table.hh"
#include "flexwatts/mode_switch.hh"

namespace
{

using namespace pdnspot;

void
printFigure()
{
    bench::banner("Sec. 6 - mode-switching flow latency budget");
    ModeSwitchParams p;
    AsciiTable t({"Step", "Latency (us)"});
    t.addRow({"1. enter package C6 (context save, power off)",
              AsciiTable::num(inMicroseconds(p.enterC6), 0)});
    t.addRow({"2. retarget V_IN + reconfigure hybrid VRs",
              AsciiTable::num(inMicroseconds(p.retargetVrs), 0)});
    t.addRow({"3. exit package C6 and resume",
              AsciiTable::num(inMicroseconds(p.exitC6), 0)});
    t.addRow({"total",
              AsciiTable::num(inMicroseconds(p.totalLatency()), 0)});
    t.print(std::cout);
    std::cout << "\nFor reference, DVFS (P-state) transitions on "
                 "client processors take up to 500 us.\n\n";
}

void
algorithm1Prediction(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    PredictorInputs in;
    in.tdp = watts(18.0);
    in.ar = 0.55;
    in.workloadType = WorkloadType::MultiThread;
    for (auto _ : state) {
        HybridMode m = pf.predictor().predict(in);
        benchmark::DoNotOptimize(m);
        in.ar = in.ar < 0.85 ? in.ar + 0.01 : 0.4;
    }
}

BENCHMARK(algorithm1Prediction);

void
oracleModeSelection(benchmark::State &state)
{
    const Platform &pf = bench::platform();
    OperatingPointModel::Query q;
    q.tdp = watts(18.0);
    PlatformState s = pf.operatingPoints().build(q);
    for (auto _ : state) {
        HybridMode m = pf.flexWatts().bestMode(s);
        benchmark::DoNotOptimize(m);
    }
}

BENCHMARK(oracleModeSelection);

void
switchFlowStateMachine(benchmark::State &state)
{
    ModeSwitchFlow flow;
    Time now;
    HybridMode target = HybridMode::LdoMode;
    for (auto _ : state) {
        flow.requestSwitch(now, target);
        now += milliseconds(1.0);
        target = target == HybridMode::LdoMode ? HybridMode::IvrMode
                                               : HybridMode::LdoMode;
        benchmark::DoNotOptimize(flow);
    }
}

BENCHMARK(switchFlowStateMachine);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printFigure)
