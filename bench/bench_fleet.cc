/**
 * @file
 * Benchmarks the fleet engine: population-scale session stepping
 * measured in sessions/sec and ns per session-bucket, serial vs the
 * thread pool, at 10k/100k/1M sessions — the trajectory metrics
 * scripts/bench.sh snapshots into BENCH_<n>.json and
 * tools/bench_diff gates on.
 */

#include "bench_util.hh"

#include <chrono>
#include <iostream>

#include "fleet/fleet_engine.hh"
#include "workload/trace_source.hh"

namespace
{

using namespace pdnspot;

/**
 * One Oracle FlexWatts cohort over a generated random-mix trace:
 * session advance pays both the whole-cycle jump and the per-phase
 * walk, and the profile carries real mode switches. Short horizon so
 * an iteration stays in milliseconds even at a million sessions.
 */
FleetSpec
benchSpec(uint64_t sessions)
{
    TraceGeneratorSpec gen;
    gen.kind = "random-mix";
    gen.seed = 7;
    gen.phases = 16;

    FleetCohort cohort;
    cohort.name = "bench";
    cohort.count = sessions;
    cohort.platform = ultraportablePreset();
    cohort.pdn = PdnKind::FlexWatts;
    cohort.mode = SimMode::Oracle;
    cohort.trace = TraceSpec::generator(gen);
    cohort.startJitter = seconds(10.0);
    cohort.batteryWh = 50.0;
    cohort.batterySpread = 0.1;

    FleetSpec spec;
    spec.cohorts.push_back(std::move(cohort));
    spec.bucket = seconds(1.0);
    spec.horizon = seconds(4.0);
    spec.seed = 3;
    return spec;
}

void
printFigure()
{
    bench::banner("Fleet engine - 100k-session Oracle cohort, "
                  "4 x 1 s buckets");
    FleetResult result = FleetEngine().run(benchSpec(100000));
    result.writeSummary(std::cout);
    std::cout << "\n";
}

/**
 * The trajectory workhorse: fleet stepping throughput in
 * sessions/sec (population × buckets / wall) and ns per
 * session-bucket, across population sizes and thread counts.
 */
void
fleetThroughput(benchmark::State &state)
{
    uint64_t sessions = static_cast<uint64_t>(state.range(0));
    unsigned nthreads = static_cast<unsigned>(state.range(1));
    ParallelRunner pool(nthreads);
    FleetEngine engine(pool);
    FleetSpec spec = benchSpec(sessions);

    uint64_t sessionBuckets = 0;
    auto start = std::chrono::steady_clock::now();
    for (auto _ : state) {
        FleetResult r = engine.run(spec);
        sessionBuckets += r.sessions * r.buckets.size();
        benchmark::DoNotOptimize(r.buckets.data());
    }
    double ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    state.counters["sessions_per_sec"] =
        ns > 0.0 ? static_cast<double>(sessionBuckets) / (ns * 1e-9)
                 : 0.0;
    state.counters["ns_per_session_bucket"] =
        sessionBuckets ? ns / static_cast<double>(sessionBuckets)
                       : 0.0;
    state.counters["threads"] = nthreads;
}

BENCHMARK(fleetThroughput)
    ->Args({10000, 1})
    ->Args({10000, 8})
    ->Args({100000, 1})
    ->Args({100000, 8})
    ->Args({1000000, 1})
    ->Args({1000000, 8})
    ->ArgNames({"sessions", "threads"})
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

PDNSPOT_BENCH_MAIN(printFigure)
